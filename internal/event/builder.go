package event

import "fmt"

// Builder constructs executions for tests, the figure catalog and the
// enumerator. Events are appended in call order, which becomes the trace
// order; per-thread call order becomes program order.
//
// NewBuilder seeds the execution with the initializing transaction of WF1
// (thread init, one write of 0 per location, committed).
type Builder struct {
	x       *Execution
	openTx  map[int]int // thread -> currently open tx id
	rf      map[int]int // explicit read -> write bindings
	wwExpl  map[int][]int
	nextThr int
	err     error
}

// ThreadBuilder appends events for one thread.
type ThreadBuilder struct {
	b  *Builder
	id int
}

// NewBuilder returns a Builder over the named locations.
func NewBuilder(locs ...string) *Builder {
	if len(locs) == 0 {
		panic("event: NewBuilder needs at least one location")
	}
	x := &Execution{
		Locs:     append([]string(nil), locs...),
		NThreads: 1,
		TxStatus: []Status{Committed},
		TxName:   []string{"init"},
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	b := &Builder{
		x:       x,
		openTx:  make(map[int]int),
		rf:      make(map[int]int),
		wwExpl:  make(map[int][]int),
		nextThr: 1,
	}
	b.append(Event{Thread: InitThread, Kind: KBegin, Loc: NoLoc, Tx: InitTx})
	for loc := range locs {
		id := b.append(Event{Thread: InitThread, Kind: KWrite, Loc: loc, Val: 0, Tx: InitTx})
		x.WW[loc] = append(x.WW[loc], id)
	}
	b.append(Event{Thread: InitThread, Kind: KCommit, Loc: NoLoc, Tx: InitTx})
	return b
}

func (b *Builder) append(e Event) int {
	e.ID = len(b.x.Events)
	b.x.Events = append(b.x.Events, e)
	return e.ID
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("event builder: "+format, args...)
	}
}

// Thread registers a new thread and returns its builder.
func (b *Builder) Thread() *ThreadBuilder {
	id := b.nextThr
	b.nextThr++
	b.x.NThreads = b.nextThr
	return &ThreadBuilder{b: b, id: id}
}

func (b *Builder) locID(name string) int {
	for i, n := range b.x.Locs {
		if n == name {
			return i
		}
	}
	b.fail("unknown location %q", name)
	return 0
}

// Begin opens a new transaction on the thread. name is for diagnostics.
func (t *ThreadBuilder) Begin(name string) *ThreadBuilder {
	b := t.b
	if _, open := b.openTx[t.id]; open {
		b.fail("thread %d: Begin with transaction already open (nesting unsupported, WF4/WF5)", t.id)
		return t
	}
	tx := len(b.x.TxStatus)
	b.x.TxStatus = append(b.x.TxStatus, Live)
	b.x.TxName = append(b.x.TxName, name)
	b.openTx[t.id] = tx
	b.append(Event{Thread: t.id, Kind: KBegin, Loc: NoLoc, Tx: tx})
	return t
}

// Commit resolves the open transaction as committed.
func (t *ThreadBuilder) Commit() *ThreadBuilder { return t.resolve(KCommit, Committed) }

// Abort resolves the open transaction as aborted.
func (t *ThreadBuilder) Abort() *ThreadBuilder { return t.resolve(KAbort, Aborted) }

func (t *ThreadBuilder) resolve(k Kind, s Status) *ThreadBuilder {
	b := t.b
	tx, open := b.openTx[t.id]
	if !open {
		b.fail("thread %d: %v with no open transaction", t.id, k)
		return t
	}
	delete(b.openTx, t.id)
	b.x.TxStatus[tx] = s
	b.append(Event{Thread: t.id, Kind: k, Loc: NoLoc, Tx: tx})
	return t
}

func (t *ThreadBuilder) curTx() int {
	if tx, open := t.b.openTx[t.id]; open {
		return tx
	}
	return NoTx
}

// R appends a read of val from loc and returns the event id.
func (t *ThreadBuilder) R(loc string, val int) int {
	return t.b.append(Event{Thread: t.id, Kind: KRead, Loc: t.b.locID(loc), Val: val, Tx: t.curTx()})
}

// W appends a write of val to loc and returns the event id. The write joins
// its location's coherence order at the next position (override with WWOrder).
func (t *ThreadBuilder) W(loc string, val int) int {
	b := t.b
	l := b.locID(loc)
	id := b.append(Event{Thread: t.id, Kind: KWrite, Loc: l, Val: val, Tx: t.curTx()})
	b.x.WW[l] = append(b.x.WW[l], id)
	return id
}

// Q appends a quiescence fence on loc (§5) and returns the event id.
func (t *ThreadBuilder) Q(loc string) int {
	b := t.b
	if tx, open := b.openTx[t.id]; open {
		b.fail("thread %d: fence inside transaction %d", t.id, tx)
	}
	return b.append(Event{Thread: t.id, Kind: KFence, Loc: b.locID(loc), Tx: NoTx})
}

// RF binds read r to write w explicitly (overrides value-based matching).
func (b *Builder) RF(w, r int) *Builder {
	b.rf[r] = w
	return b
}

// InitWrite returns the event id of the initializing write of loc, for
// explicit RF bindings when a program also writes 0 to the location.
func (b *Builder) InitWrite(loc string) int {
	l := b.locID(loc)
	return b.x.WW[l][0]
}

// WWOrder sets the full coherence order of loc's non-init writes. The init
// write keeps timestamp 0 (first position).
func (b *Builder) WWOrder(loc string, ids ...int) *Builder {
	b.wwExpl[b.locID(loc)] = append([]int(nil), ids...)
	return b
}

// Build finalizes the execution. Unresolved transactions remain live.
// Reads without an explicit RF binding are matched to the unique write
// with the same location and value; ambiguity is an error.
func (b *Builder) Build() (*Execution, error) {
	if b.err != nil {
		return nil, b.err
	}
	x := b.x
	for loc, ids := range b.wwExpl {
		want := len(x.WW[loc]) - 1 // non-init writes
		if len(ids) != want {
			return nil, fmt.Errorf("event builder: WWOrder(%s) lists %d writes, location has %d",
				x.Locs[loc], len(ids), want)
		}
		x.WW[loc] = append(x.WW[loc][:1], ids...)
	}
	for _, e := range x.Events {
		if e.Kind != KRead {
			continue
		}
		if w, ok := b.rf[e.ID]; ok {
			we := x.Events[w]
			if we.Kind != KWrite || we.Loc != e.Loc || we.Val != e.Val {
				return nil, fmt.Errorf("event builder: RF(%d,%d) mismatches loc/value", w, e.ID)
			}
			x.WR[e.ID] = w
			continue
		}
		cand := -1
		for _, w := range x.WW[e.Loc] {
			if x.Events[w].Val == e.Val {
				if cand != -1 {
					return nil, fmt.Errorf("event builder: read %d of %s=%d is ambiguous (writes %d and %d); use RF",
						e.ID, x.Locs[e.Loc], e.Val, cand, w)
				}
				cand = w
			}
		}
		if cand == -1 {
			return nil, fmt.Errorf("event builder: read %d of %s=%d has no matching write",
				e.ID, x.Locs[e.Loc], e.Val)
		}
		x.WR[e.ID] = cand
	}
	if err := x.Validate(); err != nil {
		return nil, err
	}
	return x, nil
}

// MustBuild is Build, panicking on error. Intended for tests and the
// figure catalog, where executions are static.
func (b *Builder) MustBuild() *Execution {
	x, err := b.Build()
	if err != nil {
		panic(err)
	}
	return x
}
