package event

import "fmt"

// Violation reports a failed well-formedness condition.
type Violation struct {
	Rule string // "WF1" .. "WF12"
	Msg  string
}

func (v Violation) String() string { return v.Rule + ": " + v.Msg }

// WellFormed checks conditions WF1–WF12 of §2 (and §5 for WF12) against the
// trace view of the execution: event ID order is the trace's index order.
// It returns all violations found (empty means well-formed).
//
// Interpretation notes, documented because the paper leaves them implicit:
//   - WF9/WF10 quantify over "committed or live c", which we read as
//     "non-aborted c" including plain writes ("we ignore aborted writes
//     because they are not visible"). The transactional-only reading is
//     too weak: it admits traces in which a live transactional write takes
//     a timestamp below an earlier plain write, and such traces have no
//     L-sequential extension exhibiting the race (Atomww forbids the
//     later-timestamp variant), falsifying Theorem 4.1. Plain writes among
//     themselves may still appear out of timestamp order (the paper's
//     ⟨Wx2⟩⟨Wx1⟩ example), since WF9 only constrains transactional b.
//   - WF2 and WF3 hold by construction (IDs are slice positions; Validate
//     enforces that each write occurs exactly once in WW).
func WellFormed(x *Execution) []Violation {
	var vs []Violation
	add := func(rule, format string, args ...any) {
		vs = append(vs, Violation{Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}

	// WF1: the trace starts with an initializing transaction containing
	// exactly one write per location at timestamp 0.
	nLocs := len(x.Locs)
	if x.N() < nLocs+2 {
		add("WF1", "trace too short for initializing transaction")
	} else {
		if e := x.Events[0]; e.Kind != KBegin || e.Thread != InitThread || e.Tx != InitTx {
			add("WF1", "trace does not start with init begin: %v", e)
		}
		seen := make(map[int]bool)
		for i := 1; i <= nLocs && i < x.N(); i++ {
			e := x.Events[i]
			if e.Kind != KWrite || e.Thread != InitThread || e.Tx != InitTx || e.Val != 0 {
				add("WF1", "event %d is not an init write of 0: %v", i, e)
				continue
			}
			if seen[e.Loc] {
				add("WF1", "location %s initialized twice", x.Locs[e.Loc])
			}
			seen[e.Loc] = true
		}
		for loc := range x.Locs {
			if !seen[loc] {
				add("WF1", "location %s not initialized", x.Locs[loc])
			}
		}
		if nLocs+1 < x.N() {
			if e := x.Events[nLocs+1]; e.Kind != KCommit || e.Tx != InitTx {
				add("WF1", "init transaction not committed at position %d: %v", nLocs+1, e)
			}
		}
		for loc, order := range x.WW {
			if len(order) == 0 || x.Events[order[0]].Thread != InitThread {
				add("WF1", "init write of %s is not timestamp-minimal", x.Locs[loc])
			}
		}
		if x.TxStatus[InitTx] != Committed {
			add("WF1", "init transaction is not committed")
		}
	}

	// WF4 + WF5: bracketing. Per thread, scan for begin/resolution
	// discipline; per transaction, exactly one begin and at most one
	// resolution, all on one thread.
	type txInfo struct {
		begins, res int
		thread      int
	}
	info := make([]txInfo, x.NTx())
	for i := range info {
		info[i].thread = -1
	}
	open := make(map[int]int) // thread -> open tx
	for _, e := range x.Events {
		if e.Tx == NoTx {
			continue
		}
		ti := &info[e.Tx]
		if ti.thread == -1 {
			ti.thread = e.Thread
		} else if ti.thread != e.Thread {
			add("WF5", "transaction %d spans threads %d and %d", e.Tx, ti.thread, e.Thread)
		}
		switch e.Kind {
		case KBegin:
			ti.begins++
			if cur, ok := open[e.Thread]; ok {
				add("WF5", "begin of tx %d while tx %d open on thread %d", e.Tx, cur, e.Thread)
			}
			open[e.Thread] = e.Tx
		case KCommit, KAbort:
			ti.res++
			if cur, ok := open[e.Thread]; !ok || cur != e.Tx {
				add("WF5", "resolution of tx %d without matching open begin on thread %d", e.Tx, e.Thread)
			}
			delete(open, e.Thread)
		default:
			if cur, ok := open[e.Thread]; !ok || cur != e.Tx {
				add("WF5", "event %v belongs to tx %d but that tx is not open", e, e.Tx)
			}
		}
	}
	for tx, ti := range info {
		if ti.thread == -1 {
			continue // no events in this trace (e.g. cut away by Prefix)
		}
		if ti.begins != 1 {
			add("WF4", "transaction %d has %d begin actions", tx, ti.begins)
		}
		if ti.res > 1 {
			add("WF4", "transaction %d has %d resolutions", tx, ti.res)
		}
		if ti.res == 0 && x.TxStatus[tx] != Live {
			add("WF4", "transaction %d is %v but has no resolution action", tx, x.TxStatus[tx])
		}
	}

	// WF6: every read is fulfilled.
	for _, e := range x.Events {
		if e.Kind == KRead {
			if _, ok := x.WR[e.ID]; !ok {
				add("WF6", "read %v is unfulfilled", e)
			}
		}
	}

	ww := x.WWRel()
	for rd, w := range x.WR {
		// WF7: aborted/live writes are visible only inside their own
		// transaction.
		if !x.IsPlain(w) && x.StatusOfEvent(w) != Committed && !x.SameTx(w, rd) {
			add("WF7", "read %d sees %v write %d across transactions", rd, x.StatusOfEvent(w), w)
		}
		// WF8: reads see only the absolute past.
		if w >= rd {
			add("WF8", "read %d precedes its fulfilling write %d in the trace", rd, w)
		}
	}

	// WF9: a transactional write must not be timestamp-ordered before an
	// earlier (in trace order) non-aborted write.
	for _, b := range x.Events {
		if b.Kind != KWrite || b.Tx == NoTx {
			continue
		}
		for _, c := range x.Events {
			if c.ID >= b.ID || !x.NonAborted(c.ID) {
				continue
			}
			if ww.Has(b.ID, c.ID) {
				add("WF9", "transactional write %d is ww-before earlier %v", b.ID, c)
			}
		}
	}

	// WF10: a transactional read from a transactional write a must not
	// follow (in trace order) a non-aborted write c with a ww→ c.
	for rd, w := range x.WR {
		if x.IsPlain(rd) || x.IsPlain(w) {
			continue
		}
		for _, c := range x.Events {
			if c.ID >= rd || !x.NonAborted(c.ID) {
				continue
			}
			if ww.Has(w, c.ID) {
				add("WF10", "transactional read %d sees write %d obscured by earlier %v", rd, w, c)
			}
		}
	}

	// WF11: a transactional read must not follow a same-transaction write
	// that obscures its fulfilling write.
	for rd, w := range x.WR {
		if x.IsPlain(rd) {
			continue
		}
		for _, c := range x.Events {
			if c.ID >= rd || !x.SameTx(c.ID, rd) {
				continue
			}
			if ww.Has(w, c.ID) {
				add("WF11", "read %d sees write %d obscured by same-tx earlier write %v", rd, w, c)
			}
		}
	}

	// WF12: a fence ⟨Qx⟩ may not be interleaved with a transaction that
	// touches x.
	for _, f := range x.Events {
		if f.Kind != KFence {
			continue
		}
		for tx := range x.TxStatus {
			bid, rid := x.txBeginRes(tx)
			if bid == -1 || bid >= f.ID {
				continue
			}
			if rid != -1 && rid < f.ID {
				continue
			}
			if x.TxTouches(tx, f.Loc) {
				add("WF12", "fence %d on %s interleaved with transaction %d", f.ID, x.Locs[f.Loc], tx)
			}
		}
	}

	return vs
}

// txBeginRes returns the event ids of tx's begin and resolution (-1 if absent).
func (x *Execution) txBeginRes(tx int) (begin, res int) {
	begin, res = -1, -1
	for _, e := range x.Events {
		if e.Tx != tx {
			continue
		}
		switch e.Kind {
		case KBegin:
			begin = e.ID
		case KCommit, KAbort:
			res = e.ID
		}
	}
	return begin, res
}

// ContiguousTx reports whether transaction tx is contiguous in the trace
// (§4): once tx begins, no other thread acts until tx resolves — except
// that threads may act after the owning thread's final action (allowing
// multiple live transactions at the end of a trace).
func ContiguousTx(x *Execution, tx int) bool {
	begin, res := x.txBeginRes(tx)
	if begin == -1 {
		return true
	}
	s := x.Events[begin].Thread
	lastOfS := -1
	for _, e := range x.Events {
		if e.Thread == s {
			lastOfS = e.ID
		}
	}
	for _, c := range x.Events {
		if c.ID <= begin || c.Thread == s {
			continue
		}
		if res != -1 && res < c.ID {
			continue // tx resolved before c
		}
		// No action of s may follow c.
		if lastOfS > c.ID {
			return false
		}
	}
	return true
}

// AllContiguous reports whether every transaction is contiguous.
func AllContiguous(x *Execution) bool {
	for tx := range x.TxStatus {
		if !ContiguousTx(x, tx) {
			return false
		}
	}
	return true
}

// IsWellFormed is a convenience wrapper over WellFormed.
func IsWellFormed(x *Execution) bool { return len(WellFormed(x)) == 0 }
