// Package event defines the action and execution structures of the paper
// "Modular Transactions: Bounding Mixed Races in Space and Time"
// (Dongol, Jagadeesan, Riely; PPoPP 2019), §2.
//
// An Execution holds a finite set of actions (events) together with the
// reads-from map (wr, encoded explicitly instead of via rational
// timestamps) and the per-location coherence order (ww, the timestamp
// order of WF3). Event IDs are positions in the Events slice; the slice
// order doubles as the trace order ("index" in the paper) for the trace
// view, while the graph view only consumes the order through po.
//
// Well-formedness conditions WF1–WF12 are implemented in wf.go. The model
// layer (derived/lifted relations, happens-before, consistency) lives in
// internal/core.
package event

import (
	"fmt"

	"modtx/internal/rel"
)

// Kind classifies actions (§2, "Actions").
type Kind uint8

const (
	KBegin  Kind = iota // ⟨b:sB⟩   transaction begin
	KRead               // ⟨a:sRxvq⟩
	KWrite              // ⟨a:sWxvq⟩
	KCommit             // ⟨a:sCb⟩  commit of transaction b
	KAbort              // ⟨a:sAb⟩  abort of transaction b
	KFence              // ⟨a:sQx⟩  quiescence fence (§5 implementation model)
)

func (k Kind) String() string {
	switch k {
	case KBegin:
		return "B"
	case KRead:
		return "R"
	case KWrite:
		return "W"
	case KCommit:
		return "C"
	case KAbort:
		return "A"
	case KFence:
		return "Q"
	}
	return "?"
}

// Status is the resolution state of a transaction (§2, "Traces and
// Transactions"): committed and aborted transactions are resolved;
// committed and live transactions are nonaborted.
type Status uint8

const (
	Committed Status = iota
	Aborted
	Live
)

func (s Status) String() string {
	switch s {
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Live:
		return "live"
	}
	return "?"
}

// NoTx marks a plain (nontransactional) event.
const NoTx = -1

// NoLoc marks events without a location (begin/commit/abort).
const NoLoc = -1

// InitThread is the reserved thread id used for initialization (§2).
const InitThread = 0

// InitTx is the transaction id of the initializing transaction (WF1).
const InitTx = 0

// SentinelVal is the value written by fence events when fences are encoded
// as writing transactions (§5 "Suborders"). It never appears in programs,
// is excluded from final states, and no read may read it.
const SentinelVal = -999

// Event is a single action. ID equals the event's index in
// Execution.Events.
type Event struct {
	ID     int
	Thread int
	Kind   Kind
	Loc    int // location index, or NoLoc
	Val    int // value read/written (reads: the fulfilled value)
	Tx     int // transaction id, or NoTx for plain events
}

func (e Event) String() string {
	switch e.Kind {
	case KBegin:
		return fmt.Sprintf("e%d:t%d.B(tx%d)", e.ID, e.Thread, e.Tx)
	case KCommit:
		return fmt.Sprintf("e%d:t%d.C(tx%d)", e.ID, e.Thread, e.Tx)
	case KAbort:
		return fmt.Sprintf("e%d:t%d.A(tx%d)", e.ID, e.Thread, e.Tx)
	case KFence:
		return fmt.Sprintf("e%d:t%d.Q(loc%d)", e.ID, e.Thread, e.Loc)
	default:
		return fmt.Sprintf("e%d:t%d.%s(loc%d)=%d", e.ID, e.Thread, e.Kind, e.Loc, e.Val)
	}
}

// Execution is a set of actions with explicit reads-from and coherence.
//
// Invariants (established by Builder or the enumerator, checked by Validate):
//   - Events[i].ID == i.
//   - per thread, event order in Events is program order.
//   - WW[loc] lists every write event to loc exactly once; the init write
//     is first (timestamp 0 of WF1).
//   - WR maps every read event to a write event on the same location with
//     the same value.
type Execution struct {
	Events   []Event
	Locs     []string // location names (index = loc id)
	NThreads int      // number of threads including InitThread
	TxStatus []Status // per transaction id
	TxName   []string // diagnostics; "" if unnamed
	WR       map[int]int
	WW       map[int][]int

	po *rel.Rel // cached
}

// N returns the number of events.
func (x *Execution) N() int { return len(x.Events) }

// NTx returns the number of transactions (including the init transaction).
func (x *Execution) NTx() int { return len(x.TxStatus) }

// Ev returns the event with the given id.
func (x *Execution) Ev(id int) Event { return x.Events[id] }

// IsPlain reports whether event id is plain (belongs to no transaction).
func (x *Execution) IsPlain(id int) bool { return x.Events[id].Tx == NoTx }

// Transactional reports whether event id belongs to a transaction
// (begin/commit/abort actions count as belonging to their transaction;
// cf. the use of tx∼ with B/C/A actions in §5).
func (x *Execution) Transactional(id int) bool { return x.Events[id].Tx != NoTx }

// SameTx implements the tx∼ equivalence of §2: a tx∼ b iff a = b or a and
// b belong to the same transaction. Plain actions relate only to themselves.
func (x *Execution) SameTx(a, b int) bool {
	if a == b {
		return true
	}
	ta, tb := x.Events[a].Tx, x.Events[b].Tx
	return ta != NoTx && ta == tb
}

// StatusOfEvent returns the resolution status of the event's transaction.
// It panics for plain events; use IsPlain first.
func (x *Execution) StatusOfEvent(id int) Status {
	tx := x.Events[id].Tx
	if tx == NoTx {
		panic(fmt.Sprintf("event: StatusOfEvent on plain event %d", id))
	}
	return x.TxStatus[tx]
}

// NonAborted reports whether the event is plain or belongs to a committed
// or live transaction ("neither is aborted" in the race definition; "c is
// either plain or nonaborted" in the rw definition).
func (x *Execution) NonAborted(id int) bool {
	tx := x.Events[id].Tx
	return tx == NoTx || x.TxStatus[tx] != Aborted
}

// CommittedOrLive reports whether the event belongs to a committed or live
// transaction. Plain events return false (used by the "c" lifted variants,
// which restrict to transactions).
func (x *Execution) CommittedOrLive(id int) bool {
	tx := x.Events[id].Tx
	return tx != NoTx && x.TxStatus[tx] != Aborted
}

// IsInit reports whether the event belongs to the initializing thread.
func (x *Execution) IsInit(id int) bool { return x.Events[id].Thread == InitThread }

// TxEvents returns the event ids belonging to transaction tx, in id order.
func (x *Execution) TxEvents(tx int) []int {
	var out []int
	for _, e := range x.Events {
		if e.Tx == tx {
			out = append(out, e.ID)
		}
	}
	return out
}

// TxTouches reports whether transaction tx reads or writes location loc
// (fences do not count as touching; begin/commit/abort have no location).
func (x *Execution) TxTouches(tx, loc int) bool {
	for _, e := range x.Events {
		if e.Tx == tx && e.Loc == loc && (e.Kind == KRead || e.Kind == KWrite) {
			return true
		}
	}
	return false
}

// LocID returns the index of the named location, or -1 if unknown.
func (x *Execution) LocID(name string) int {
	for i, n := range x.Locs {
		if n == name {
			return i
		}
	}
	return -1
}

// PO returns program order: a po→ b iff a precedes b in Events and both
// belong to the same thread. The result is cached; callers must not mutate.
func (x *Execution) PO() *rel.Rel {
	if x.po != nil {
		return x.po
	}
	po := rel.New(x.N())
	last := make(map[int][]int) // thread -> earlier event ids
	for _, e := range x.Events {
		for _, p := range last[e.Thread] {
			po.Add(p, e.ID)
		}
		last[e.Thread] = append(last[e.Thread], e.ID)
	}
	x.po = po
	return po
}

// InitRel returns initialization order: ⟨a:s⟩ init→ ⟨b:t⟩ iff s = init ≠ t.
func (x *Execution) InitRel() *rel.Rel {
	r := rel.New(x.N())
	for _, a := range x.Events {
		if a.Thread != InitThread {
			continue
		}
		for _, b := range x.Events {
			if b.Thread != InitThread {
				r.Add(a.ID, b.ID)
			}
		}
	}
	return r
}

// WWRel returns write-to-write (coherence) order derived from WW: for each
// location, earlier-timestamped writes relate to later ones (transitive).
func (x *Execution) WWRel() *rel.Rel {
	r := rel.New(x.N())
	for _, order := range x.WW {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				r.Add(order[i], order[j])
			}
		}
	}
	return r
}

// WRRel returns write-to-read order (reads-from).
func (x *Execution) WRRel() *rel.Rel {
	r := rel.New(x.N())
	for rd, wr := range x.WR {
		r.Add(wr, rd)
	}
	return r
}

// RWRel returns the antidependency relation of §2:
//
//	b rw→ c iff a wr→ b and a ww→ c for some a, and c is either plain or
//	nonaborted.
func (x *Execution) RWRel() *rel.Rel {
	ww := x.WWRel()
	r := rel.New(x.N())
	for rd, w := range x.WR {
		for _, c := range x.Events {
			if c.Kind != KWrite || c.ID == w {
				continue
			}
			if ww.Has(w, c.ID) && x.NonAborted(c.ID) {
				r.Add(rd, c.ID)
			}
		}
	}
	return r
}

// WriteIDs returns every write event to loc in coherence (timestamp) order.
func (x *Execution) WriteIDs(loc int) []int { return x.WW[loc] }

// FinalValue returns the final value of loc: the value of the
// coherence-maximal write that is plain or committed (aborted writes are
// rolled back; live writes are not yet visible). ok is false when the only
// writes are from unresolved or aborted transactions and no plain or
// committed write exists (cannot happen in well-formed executions, which
// include the committed init write).
func (x *Execution) FinalValue(loc int) (val int, ok bool) {
	order := x.WW[loc]
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		tx := x.Events[id].Tx
		if tx == NoTx || x.TxStatus[tx] == Committed {
			if x.Events[id].Val == SentinelVal {
				continue // fence-encoded writes carry no value
			}
			return x.Events[id].Val, true
		}
	}
	return 0, false
}

// Validate checks the structural invariants documented on Execution.
// It is cheaper and more basic than WellFormed: it guards against malformed
// construction rather than checking the paper's WF conditions.
func (x *Execution) Validate() error {
	for i, e := range x.Events {
		if e.ID != i {
			return fmt.Errorf("event %d has ID %d", i, e.ID)
		}
		if e.Tx != NoTx && (e.Tx < 0 || e.Tx >= len(x.TxStatus)) {
			return fmt.Errorf("event %d references unknown tx %d", i, e.Tx)
		}
		if (e.Kind == KRead || e.Kind == KWrite || e.Kind == KFence) && (e.Loc < 0 || e.Loc >= len(x.Locs)) {
			return fmt.Errorf("event %d references unknown loc %d", i, e.Loc)
		}
	}
	seen := make(map[int]bool)
	for loc, order := range x.WW {
		for _, id := range order {
			e := x.Events[id]
			if e.Kind != KWrite || e.Loc != loc {
				return fmt.Errorf("WW[%d] lists non-write or wrong-loc event %d", loc, id)
			}
			if seen[id] {
				return fmt.Errorf("event %d appears twice in WW", id)
			}
			seen[id] = true
		}
	}
	for _, e := range x.Events {
		if e.Kind == KWrite && !seen[e.ID] {
			return fmt.Errorf("write event %d missing from WW", e.ID)
		}
	}
	for rd, w := range x.WR {
		re, we := x.Events[rd], x.Events[w]
		if re.Kind != KRead || we.Kind != KWrite {
			return fmt.Errorf("WR pair (%d,%d) has wrong kinds", w, rd)
		}
		if re.Loc != we.Loc || re.Val != we.Val {
			return fmt.Errorf("WR pair (%d,%d) mismatches loc/value", w, rd)
		}
	}
	return nil
}

// Clone returns a deep copy of the execution (caches dropped).
func (x *Execution) Clone() *Execution {
	c := &Execution{
		Events:   append([]Event(nil), x.Events...),
		Locs:     append([]string(nil), x.Locs...),
		NThreads: x.NThreads,
		TxStatus: append([]Status(nil), x.TxStatus...),
		TxName:   append([]string(nil), x.TxName...),
		WR:       make(map[int]int, len(x.WR)),
		WW:       make(map[int][]int, len(x.WW)),
	}
	for k, v := range x.WR {
		c.WR[k] = v
	}
	for k, v := range x.WW {
		c.WW[k] = append([]int(nil), v...)
	}
	return c
}

// Reorder returns a copy of the execution whose trace order is the given
// permutation of event ids (order[i] = old id at new position i). Event IDs
// are renumbered; WR/WW are remapped. Program order must be preserved by
// the permutation for the result to make sense; this is the caller's
// responsibility (checked by WellFormed via WF bracketing if desired).
func (x *Execution) Reorder(order []int) *Execution {
	if len(order) != x.N() {
		panic("event: Reorder permutation has wrong length")
	}
	newID := make([]int, x.N())
	for pos, old := range order {
		newID[old] = pos
	}
	c := x.Clone()
	c.po = nil
	c.Events = make([]Event, x.N())
	for pos, old := range order {
		e := x.Events[old]
		e.ID = pos
		c.Events[pos] = e
	}
	c.WR = make(map[int]int, len(x.WR))
	for rd, w := range x.WR {
		c.WR[newID[rd]] = newID[w]
	}
	c.WW = make(map[int][]int, len(x.WW))
	for loc, ord := range x.WW {
		no := make([]int, len(ord))
		for i, id := range ord {
			no[i] = newID[id]
		}
		c.WW[loc] = no
	}
	return c
}

// Prefix returns the sub-execution consisting of the first k events in
// trace order. Transactions cut before their resolution become live.
// Reads-from pairs and coherence orders are restricted to surviving events.
// Panics if a surviving read lost its fulfilling write (violates WF8 for
// the original trace).
func (x *Execution) Prefix(k int) *Execution {
	if k < 0 || k > x.N() {
		panic("event: Prefix length out of range")
	}
	c := &Execution{
		Events:   append([]Event(nil), x.Events[:k]...),
		Locs:     append([]string(nil), x.Locs...),
		NThreads: x.NThreads,
		TxStatus: append([]Status(nil), x.TxStatus...),
		TxName:   append([]string(nil), x.TxName...),
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	// Recompute statuses: a transaction whose resolution was cut is live.
	resolved := make([]bool, len(x.TxStatus))
	began := make([]bool, len(x.TxStatus))
	for _, e := range c.Events {
		switch e.Kind {
		case KBegin:
			began[e.Tx] = true
		case KCommit:
			resolved[e.Tx] = true
			c.TxStatus[e.Tx] = Committed
		case KAbort:
			resolved[e.Tx] = true
			c.TxStatus[e.Tx] = Aborted
		}
	}
	for tx := range c.TxStatus {
		if began[tx] && !resolved[tx] {
			c.TxStatus[tx] = Live
		}
	}
	for rd, w := range x.WR {
		if rd < k {
			if w >= k {
				panic("event: Prefix drops fulfilling write of surviving read (WF8 violated in source)")
			}
			c.WR[rd] = w
		}
	}
	for loc, ord := range x.WW {
		var no []int
		for _, id := range ord {
			if id < k {
				no = append(no, id)
			}
		}
		if len(no) > 0 {
			c.WW[loc] = no
		}
	}
	return c
}

// Subsequence returns the sub-execution consisting of the events whose ids
// satisfy keep, renumbered in their original relative order. Reads whose
// fulfilling write is dropped are themselves dropped from WR (callers that
// need WF6 must keep fulfilling writes). Transaction statuses are preserved.
func (x *Execution) Subsequence(keep func(id int) bool) *Execution {
	var order []int
	for id := range x.Events {
		if keep(id) {
			order = append(order, id)
		}
	}
	newID := make(map[int]int, len(order))
	for pos, old := range order {
		newID[old] = pos
	}
	c := &Execution{
		Locs:     append([]string(nil), x.Locs...),
		NThreads: x.NThreads,
		TxStatus: append([]Status(nil), x.TxStatus...),
		TxName:   append([]string(nil), x.TxName...),
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	for pos, old := range order {
		e := x.Events[old]
		e.ID = pos
		c.Events = append(c.Events, e)
	}
	for rd, w := range x.WR {
		nr, okR := newID[rd]
		nw, okW := newID[w]
		if okR && okW {
			c.WR[nr] = nw
		}
	}
	for loc, ord := range x.WW {
		var no []int
		for _, id := range ord {
			if ni, ok := newID[id]; ok {
				no = append(no, ni)
			}
		}
		if len(no) > 0 {
			c.WW[loc] = no
		}
	}
	return c
}

// RemoveAborted returns the execution with all events of aborted
// transactions removed (Theorem 4.2).
func (x *Execution) RemoveAborted() *Execution {
	return x.Subsequence(func(id int) bool {
		tx := x.Events[id].Tx
		return tx == NoTx || x.TxStatus[tx] != Aborted
	})
}

// EncodeFences returns an execution in which every quiescence fence ⟨Qx⟩
// is replaced by a committed singleton transaction writing x (§5
// "Suborders": "The quiescent fence ⟨Qx⟩ has the same ordering properties
// as a committed transaction that writes x: ⟨a:B⟩⟨Qx⟩⟨Ca⟩. ... we encode
// quiescent fences thusly as writing transactions."). The write carries
// SentinelVal, is appended at its fence's position in every coherence
// order position chosen by the caller — here: coherence position is left
// to the caller via WW, so the fence write is placed last in its
// location's order by default; enumerators typically re-enumerate WW.
func (x *Execution) EncodeFences() *Execution {
	hasFence := false
	for _, e := range x.Events {
		if e.Kind == KFence {
			hasFence = true
			break
		}
	}
	if !hasFence {
		return x.Clone()
	}
	c := &Execution{
		Locs:     append([]string(nil), x.Locs...),
		NThreads: x.NThreads,
		TxStatus: append([]Status(nil), x.TxStatus...),
		TxName:   append([]string(nil), x.TxName...),
		WR:       make(map[int]int),
		WW:       make(map[int][]int),
	}
	newID := make([]int, x.N())
	for _, e := range x.Events {
		if e.Kind != KFence {
			ne := e
			ne.ID = len(c.Events)
			newID[e.ID] = ne.ID
			c.Events = append(c.Events, ne)
			continue
		}
		tx := len(c.TxStatus)
		c.TxStatus = append(c.TxStatus, Committed)
		c.TxName = append(c.TxName, fmt.Sprintf("q%d", e.ID))
		b := Event{ID: len(c.Events), Thread: e.Thread, Kind: KBegin, Loc: NoLoc, Tx: tx}
		c.Events = append(c.Events, b)
		w := Event{ID: len(c.Events), Thread: e.Thread, Kind: KWrite, Loc: e.Loc, Val: SentinelVal, Tx: tx}
		newID[e.ID] = w.ID
		c.Events = append(c.Events, w)
		cm := Event{ID: len(c.Events), Thread: e.Thread, Kind: KCommit, Loc: NoLoc, Tx: tx}
		c.Events = append(c.Events, cm)
	}
	for rd, wr := range x.WR {
		c.WR[newID[rd]] = newID[wr]
	}
	for loc, ord := range x.WW {
		no := make([]int, len(ord))
		for i, id := range ord {
			no[i] = newID[id]
		}
		c.WW[loc] = no
	}
	// Fence writes join the coherence order of their location; default
	// placement is at the end. Enumerators override WW wholesale.
	for _, e := range c.Events {
		if e.Kind == KWrite && e.Val == SentinelVal {
			c.WW[e.Loc] = append(c.WW[e.Loc], e.ID)
		}
	}
	return c
}
