package obs

import "sync/atomic"

// hotSlots is the fixed capacity of a HotTable. Contention profiles are
// heavy-tailed by nature (that is what makes them worth attributing), so
// a small table tracks the head of the distribution accurately while the
// tail lands in the dropped counter.
const hotSlots = 16

// HotTable is a fixed-size, allocation-free approximate top-K frequency
// table keyed by nonzero uint64 ids — the contention-attribution sink of
// the runtime: every conflict records the id of the variable it lost to,
// and snapshots map ids back to key names at read time (the table itself
// is name-oblivious, so the write side stays a handful of atomic ops).
//
// The algorithm is lossy counting in the space-saving family: a recorded
// id that is resident increments its slot; a new id takes a free slot if
// one exists; otherwise the smallest resident count is decremented (and
// its slot recycled once it reaches zero), so a genuinely hot id evicts
// the table's noise while sporadic ids cancel each other out. Counts are
// therefore approximate — on skewed workloads the head of the table
// converges to the true hot set, which is the use case. Races between
// recorders can lose or misattribute individual increments; the table
// trades per-record exactness for a lock-free write side.
//
// The zero value is an empty table, ready for use.
type HotTable struct {
	_       [64]byte
	slots   [hotSlots]hotSlot
	dropped atomic.Uint64 // records that only decayed the table
	_       [48]byte
}

type hotSlot struct {
	id atomic.Uint64 // 0 = free
	n  atomic.Uint64
}

// Record attributes one event to id. id 0 (no attribution) is ignored.
// It never allocates and never blocks: at most one scan of the fixed
// slot array and a few atomic ops.
func (t *HotTable) Record(id uint64) {
	if id == 0 {
		return
	}
	var free *hotSlot
	var min *hotSlot
	var minID, minN uint64
	for i := range t.slots {
		s := &t.slots[i]
		got := s.id.Load()
		if got == id {
			s.n.Add(1)
			return
		}
		if got == 0 {
			if free == nil {
				free = s
			}
			continue
		}
		if n := s.n.Load(); min == nil || n < minN {
			min, minID, minN = s, got, n
		}
	}
	if free != nil && free.id.CompareAndSwap(0, id) {
		free.n.Add(1)
		return
	}
	// Table full: decay the smallest resident count; once a slot has
	// decayed to zero its id is recycled for the newcomer. A lost CAS
	// means another recorder got there first — count the record as
	// dropped rather than retrying (this is a profile, not a ledger).
	if min == nil {
		t.dropped.Add(1)
		return
	}
	if minN == 0 {
		if min.id.CompareAndSwap(minID, id) {
			min.n.Add(1)
			return
		}
	} else {
		min.n.Add(^uint64(0)) // decrement
	}
	t.dropped.Add(1)
}

// HotEntry is one resident id and its approximate count.
type HotEntry struct {
	ID    uint64 `json:"id"`
	Count uint64 `json:"count"`
}

// Snapshot returns the resident entries sorted by descending count.
// It allocates; snapshots are for the read side.
func (t *HotTable) Snapshot() []HotEntry {
	out := make([]HotEntry, 0, hotSlots)
	for i := range t.slots {
		s := &t.slots[i]
		id := s.id.Load()
		if id == 0 {
			continue
		}
		if n := s.n.Load(); n > 0 {
			out = append(out, HotEntry{ID: id, Count: n})
		}
	}
	// Insertion sort: at most hotSlots entries.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Count > out[j-1].Count; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Dropped returns the number of records that fell to the decay path —
// the mass the fixed table could not attribute.
func (t *HotTable) Dropped() uint64 {
	return t.dropped.Load()
}

// Reset empties the table. Like Histogram.Reset it is an operator
// action: records racing the reset may survive partially.
func (t *HotTable) Reset() {
	for i := range t.slots {
		t.slots[i].n.Store(0)
		t.slots[i].id.Store(0)
	}
	t.dropped.Store(0)
}
