// Package obs is the dependency-free metrics core of the runtime: the
// fixed-layout, allocation-free primitives every layer above (internal/stm,
// internal/kv, cmd/mtx-kv) records into and every read side (the /metrics
// admin plane, STATS wire commands, the bench tools) snapshots out of.
//
// The paper's contribution is *attribution* — which access pair raced,
// under which bound — so the package provides exactly two shapes:
//
//   - Histogram: a log-bucketed latency (or any int64) distribution.
//     64 power-of-two buckets of atomic counters, so the write side is a
//     single atomic add with no locks, no allocation and no floating
//     point, and snapshots merge across shards and engines by plain
//     addition.
//   - HotTable: a fixed-size lossy top-K frequency table keyed by uint64
//     ids (variable ids, in practice), so conflicts can be attributed to
//     the losing location without unbounded memory or a map on the abort
//     path.
//
// Both types are usable at their zero value, safe for concurrent use, and
// never allocate on the write side — the invariants the PR-4 alloc guards
// pin for the paths that embed them. Read-side snapshots allocate freely;
// they are for operators, not hot loops.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram: one bucket
// per power of two of the observed value, which for nanosecond latencies
// spans 1ns to ~292 years.
const NumBuckets = 64

// Histogram is a concurrent, allocation-free, log-bucketed distribution.
// Bucket i counts observations v with bucketOf(v) == i: bucket 0 holds
// v <= 1 and bucket i (i >= 1) holds 2^i <= v < 2^(i+1). The write side
// (Observe) is two uncontended atomic adds; the read side (Snapshot)
// copies the buckets and derives counts and quantiles offline, so
// histograms merge across shards, engines and goroutines by addition.
//
// The leading and trailing padding keeps a histogram's counter words off
// its neighbors' cache lines when histograms are embedded in arrays
// (per-op tables, per-shard metrics), so one hot op's write side does not
// false-share with another's.
//
// The zero value is an empty histogram, ready for use.
type Histogram struct {
	_       [64]byte // pad from the previous neighbor's write side
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64 // running total of observed values
	_       [56]byte      // pad the sum word from the next neighbor
}

// bucketOf maps an observation to its bucket: floor(log2(v)), with
// everything <= 1 (including the degenerate negatives) in bucket 0.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	return bits.Len64(uint64(v)) - 1
}

// BucketUpper returns the largest value bucket i admits — the inclusive
// upper bound reported by quantiles and rendered as the Prometheus "le"
// label. The last bucket is unbounded and reports MaxInt64.
func BucketUpper(i int) int64 {
	if i >= NumBuckets-1 {
		return math.MaxInt64
	}
	return (int64(1) << (i + 1)) - 1
}

// Observe records one value. It never allocates and never blocks: one
// atomic add on the value's bucket, one on the running sum.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// Snapshot copies the histogram. Concurrent Observes may land between
// the bucket loads, so a snapshot is consistent only up to in-flight
// observations — the usual contract of monitoring counters.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.Sum = h.sum.Load()
	return s
}

// Reset zeroes the histogram. Observations racing the reset may be
// partially kept; Reset is an operator action, not a synchronization
// point.
func (h *Histogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.sum.Store(0)
}

// Snapshot is a point-in-time copy of a Histogram: plain integers, so it
// marshals to JSON directly and merges by addition.
type Snapshot struct {
	Buckets [NumBuckets]uint64 `json:"buckets"`
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
}

// Merge adds o into s. Histograms share the fixed bucket layout, so
// merging across shards, engines or goroutines is exact.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// inclusive upper bound of the first bucket whose cumulative count
// reaches rank ceil(q*Count). The log bucketing bounds the overestimate
// by 2x, which is the deliberate trade for an allocation-free write side.
// An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the average observed value, or 0 for an empty snapshot.
// Unlike quantiles it is exact: the write side keeps the true sum.
func (s *Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// MaxBucket returns the index of the highest non-empty bucket, or -1 for
// an empty snapshot — the resolution ceiling of Quantile(1).
func (s *Snapshot) MaxBucket() int {
	for i := NumBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			return i
		}
	}
	return -1
}
