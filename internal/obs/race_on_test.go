//go:build race

package obs

// raceEnabled reports that the race detector is instrumenting this
// build: its shadow-memory bookkeeping shows up in AllocsPerRun, so the
// allocation guards skip themselves (the non-race CI job pins them).
const raceEnabled = true
