package obs

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0},
		{2, 1}, {3, 1},
		{4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10},
		{1 << 62, 62}, {math.MaxInt64, 62},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestBucketUpperCoversBucket(t *testing.T) {
	for i := 0; i < NumBuckets; i++ {
		up := BucketUpper(i)
		if got := bucketOf(up); got != i && i < NumBuckets-1 {
			t.Errorf("bucketOf(BucketUpper(%d)=%d) = %d", i, up, got)
		}
		// i == 62's upper bound is MaxInt64 (bucket 63 is unreachable
		// for int64 observations), so the +1 probe stops below it.
		if i < NumBuckets-2 && bucketOf(up+1) != i+1 {
			t.Errorf("BucketUpper(%d)+1 should fall in bucket %d", i, i+1)
		}
	}
	if BucketUpper(NumBuckets-1) != math.MaxInt64 {
		t.Errorf("last bucket must be unbounded")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 observations around 100ns (bucket 6, upper 127), 9 around 1µs
	// (bucket 9, upper 1023), 1 at 1ms (bucket 19, upper ~1.05ms).
	for i := 0; i < 90; i++ {
		h.Observe(100)
	}
	for i := 0; i < 9; i++ {
		h.Observe(1000)
	}
	h.Observe(1_000_000)
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if got := s.Quantile(0.5); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := s.Quantile(0.95); got != 1023 {
		t.Errorf("p95 = %d, want 1023", got)
	}
	if got := s.Quantile(0.999); got != (1<<20)-1 {
		t.Errorf("p999 = %d, want %d", got, (1<<20)-1)
	}
	if got := s.Quantile(1); got != (1<<20)-1 {
		t.Errorf("max = %d, want %d", got, (1<<20)-1)
	}
	wantSum := uint64(90*100 + 9*1000 + 1_000_000)
	if s.Sum != wantSum {
		t.Errorf("sum = %d, want %d", s.Sum, wantSum)
	}
	if mean := s.Mean(); mean != float64(wantSum)/100 {
		t.Errorf("mean = %v", mean)
	}
	if mb := s.MaxBucket(); mb != 19 {
		t.Errorf("max bucket = %d, want 19", mb)
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 || s.MaxBucket() != -1 {
		t.Fatalf("empty snapshot misbehaves: %+v", s)
	}
	h.Observe(500)
	h.Reset()
	if s := h.Snapshot(); s.Count != 0 || s.Sum != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 10; i++ {
		a.Observe(64)
		b.Observe(4096)
	}
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Count != 20 {
		t.Fatalf("merged count = %d, want 20", s.Count)
	}
	if got := s.Quantile(0.5); got != 127 {
		t.Errorf("merged p50 = %d, want 127", got)
	}
	if got := s.Quantile(1); got != 8191 {
		t.Errorf("merged max = %d, want 8191", got)
	}
	if s.Sum != 10*64+10*4096 {
		t.Errorf("merged sum = %d", s.Sum)
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed snapshot:\n  %+v\n  %+v", s, back)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(1 << (g % 12)))
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", s.Count, goroutines*per)
	}
}

func TestHotTableTopK(t *testing.T) {
	var ht HotTable
	// A skewed workload over many more ids than slots: id i gets
	// weight proportional to its heat, with two clear leaders.
	for round := 0; round < 1000; round++ {
		ht.Record(1)
		ht.Record(1)
		ht.Record(1)
		ht.Record(2)
		ht.Record(2)
		ht.Record(uint64(3 + round%50)) // 50 cold ids share the tail
	}
	snap := ht.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	if snap[0].ID != 1 {
		t.Fatalf("hottest id = %d, want 1 (snapshot %+v)", snap[0].ID, snap)
	}
	if len(snap) < 2 || snap[1].ID != 2 {
		t.Fatalf("second id = %+v, want 2", snap)
	}
	if snap[0].Count < snap[1].Count {
		t.Fatal("snapshot not sorted by count")
	}
	// The leaders' counts should be near their true frequencies: they
	// are never the minimum slot, so decay cannot touch them.
	if snap[0].Count != 3000 {
		t.Errorf("leader count = %d, want 3000", snap[0].Count)
	}
	if snap[1].Count != 2000 {
		t.Errorf("runner-up count = %d, want 2000", snap[1].Count)
	}
}

func TestHotTableZeroIDIgnored(t *testing.T) {
	var ht HotTable
	ht.Record(0)
	if snap := ht.Snapshot(); len(snap) != 0 {
		t.Fatalf("id 0 must be ignored, got %+v", snap)
	}
}

func TestHotTableReset(t *testing.T) {
	var ht HotTable
	for i := uint64(1); i <= 2*hotSlots; i++ {
		ht.Record(i)
	}
	if ht.Dropped() == 0 {
		t.Fatal("overflow should have dropped records")
	}
	ht.Reset()
	if snap := ht.Snapshot(); len(snap) != 0 || ht.Dropped() != 0 {
		t.Fatalf("reset left residue: %+v dropped=%d", snap, ht.Dropped())
	}
}

func TestHotTableConcurrent(t *testing.T) {
	var ht HotTable
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				ht.Record(uint64(1 + (g+i)%4))
			}
		}(g)
	}
	wg.Wait()
	snap := ht.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("want 4 resident ids, got %+v", snap)
	}
	var total uint64
	for _, e := range snap {
		total += e.Count
	}
	if total != 80000 {
		t.Fatalf("total = %d, want 80000 (no decay should occur with 4 ids)", total)
	}
}

// TestAllocsWriteSide pins the package contract: Observe and Record
// allocate nothing.
func TestAllocsWriteSide(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	var h Histogram
	if avg := testing.AllocsPerRun(100, func() { h.Observe(12345) }); avg != 0 {
		t.Errorf("Observe: %v allocs/op, want 0", avg)
	}
	var ht HotTable
	var id uint64
	if avg := testing.AllocsPerRun(100, func() {
		id++
		ht.Record(1 + id%32) // exercises resident, free and decay paths
	}); avg != 0 {
		t.Errorf("Record: %v allocs/op, want 0", avg)
	}
}

// BenchmarkHistObserve measures the histogram write side — the cost every
// sampled operation pays.
func BenchmarkHistObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

// BenchmarkHistHotRecord measures the contention table write side — the
// cost every attributed conflict pays (resident-id fast path).
func BenchmarkHistHotRecord(b *testing.B) {
	var ht HotTable
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ht.Record(1 + uint64(i)%4)
	}
}

// BenchmarkHistSnapshotQuantile measures the read side (allocation is
// expected here; it is not a hot path).
func BenchmarkHistSnapshotQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 10000; i++ {
		h.Observe(int64(i))
	}
	var sink int64
	for i := 0; i < b.N; i++ {
		s := h.Snapshot()
		sink += s.Quantile(0.99)
	}
	_ = sink
}
