package rel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	r := New(70) // spans more than one word per row
	pairs := [][2]int{{0, 0}, {0, 69}, {69, 0}, {13, 64}, {64, 63}}
	for _, p := range pairs {
		if r.Has(p[0], p[1]) {
			t.Fatalf("empty relation has (%d,%d)", p[0], p[1])
		}
		r.Add(p[0], p[1])
		if !r.Has(p[0], p[1]) {
			t.Fatalf("pair (%d,%d) missing after Add", p[0], p[1])
		}
	}
	if got := r.Len(); got != len(pairs) {
		t.Fatalf("Len = %d, want %d", got, len(pairs))
	}
	r.Remove(0, 69)
	if r.Has(0, 69) {
		t.Fatal("pair (0,69) present after Remove")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(3).Add(0, 3)
}

func TestUnionMinusIntersect(t *testing.T) {
	a := New(5)
	a.Add(0, 1)
	a.Add(1, 2)
	b := New(5)
	b.Add(1, 2)
	b.Add(2, 3)

	u := a.Clone().Union(b)
	for _, p := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if !u.Has(p[0], p[1]) {
			t.Errorf("union missing (%d,%d)", p[0], p[1])
		}
	}
	m := a.Clone().Minus(b)
	if !m.Has(0, 1) || m.Has(1, 2) {
		t.Errorf("minus wrong: %v", m)
	}
	i := a.Clone().Intersect(b)
	if i.Has(0, 1) || !i.Has(1, 2) || i.Has(2, 3) {
		t.Errorf("intersect wrong: %v", i)
	}
}

func TestCompose(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	s := New(4)
	s.Add(1, 3)
	s.Add(2, 0)
	c := Compose(r, s)
	want := [][2]int{{0, 3}, {1, 0}}
	if c.Len() != len(want) {
		t.Fatalf("compose has %d pairs, want %d: %v", c.Len(), len(want), c)
	}
	for _, p := range want {
		if !c.Has(p[0], p[1]) {
			t.Errorf("compose missing (%d,%d)", p[0], p[1])
		}
	}
}

func TestTransitiveClosure(t *testing.T) {
	r := New(5)
	r.Add(0, 1)
	r.Add(1, 2)
	r.Add(2, 3)
	c := r.TransitiveClosure()
	for _, p := range [][2]int{{0, 2}, {0, 3}, {1, 3}} {
		if !c.Has(p[0], p[1]) {
			t.Errorf("closure missing (%d,%d)", p[0], p[1])
		}
	}
	if c.Has(3, 0) {
		t.Error("closure has spurious (3,0)")
	}
	if !c.Irreflexive() {
		t.Error("closure of a chain should be irreflexive")
	}
}

func TestAcyclic(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(1, 2)
	if !r.Acyclic() {
		t.Error("chain reported cyclic")
	}
	r.Add(2, 0)
	if r.Acyclic() {
		t.Error("3-cycle reported acyclic")
	}
	s := New(2)
	s.Add(0, 0)
	if s.Acyclic() {
		t.Error("self-loop reported acyclic")
	}
}

func TestTopoSort(t *testing.T) {
	r := New(5)
	r.Add(3, 1)
	r.Add(1, 0)
	r.Add(2, 0)
	order, ok := r.TopoSort()
	if !ok {
		t.Fatal("acyclic relation failed to sort")
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	r.Each(func(i, j int) {
		if pos[i] >= pos[j] {
			t.Errorf("order violates edge %d→%d", i, j)
		}
	})

	r.Add(0, 3) // introduces a cycle 3→1→0→3
	if _, ok := r.TopoSort(); ok {
		t.Error("cyclic relation sorted")
	}
}

func TestSubsetEqualEmpty(t *testing.T) {
	a := New(4)
	a.Add(0, 1)
	b := a.Clone()
	b.Add(1, 2)
	if !a.SubsetOf(b) || b.SubsetOf(a) {
		t.Error("subset check wrong")
	}
	if a.Equal(b) || !a.Equal(a.Clone()) {
		t.Error("equality check wrong")
	}
	if a.IsEmpty() || !New(4).IsEmpty() {
		t.Error("emptiness check wrong")
	}
}

func TestInverseRestrictFilter(t *testing.T) {
	r := New(4)
	r.Add(0, 1)
	r.Add(2, 3)
	inv := r.Inverse()
	if !inv.Has(1, 0) || !inv.Has(3, 2) || inv.Len() != 2 {
		t.Errorf("inverse wrong: %v", inv)
	}
	res := r.Restrict(func(i int) bool { return i < 2 })
	if !res.Has(0, 1) || res.Has(2, 3) {
		t.Errorf("restrict wrong: %v", res)
	}
	fil := r.Filter(func(i, j int) bool { return j == 3 })
	if fil.Has(0, 1) || !fil.Has(2, 3) {
		t.Errorf("filter wrong: %v", fil)
	}
}

func TestSuccessorsPairsEach(t *testing.T) {
	r := New(70)
	r.Add(1, 0)
	r.Add(1, 65)
	succ := r.Successors(1)
	if len(succ) != 2 || succ[0] != 0 || succ[1] != 65 {
		t.Errorf("Successors = %v", succ)
	}
	if got := r.Pairs(); len(got) != 2 {
		t.Errorf("Pairs = %v", got)
	}
}

func randomRel(rng *rand.Rand, n, edges int) *Rel {
	r := New(n)
	for e := 0; e < edges; e++ {
		r.Add(rng.Intn(n), rng.Intn(n))
	}
	return r
}

// Property: transitive closure is idempotent and contains the original.
func TestClosureProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		r := randomRel(rng, 12, rng.Intn(30))
		c := r.TransitiveClosure()
		if !r.SubsetOf(c) {
			t.Fatal("closure does not contain original")
		}
		if !c.TransitiveClosure().Equal(c) {
			t.Fatal("closure not idempotent")
		}
		// Closure must be transitively closed: c;c ⊆ c.
		if !Compose(c, c).SubsetOf(c) {
			t.Fatal("closure not transitive")
		}
	}
}

// Property: composition is associative.
func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 100; iter++ {
		a := randomRel(rng, 10, 15)
		b := randomRel(rng, 10, 15)
		c := randomRel(rng, 10, 15)
		left := Compose(Compose(a, b), c)
		right := Compose(a, Compose(b, c))
		if !left.Equal(right) {
			t.Fatal("composition not associative")
		}
	}
}

// Property: TopoSort succeeds iff relation is acyclic.
func TestTopoSortIffAcyclic(t *testing.T) {
	f := func(seed int64, nEdges uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, 9, int(nEdges%40))
		_, ok := r.TopoSort()
		return ok == r.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is the least upper bound (both operands are subsets).
func TestUnionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRel(rng, 8, 12)
		b := randomRel(rng, 8, 12)
		u := UnionOf(a, b)
		return a.SubsetOf(u) && b.SubsetOf(u) && u.Len() <= a.Len()+b.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
