// Package rel provides a small dense bitset-based binary-relation algebra.
//
// Executions in this repository are tiny (tens of events), so relations are
// represented as n×n bit matrices with one []uint64 row group per source
// element. All operations used by the memory-model layer — union,
// composition, transitive closure, acyclicity and irreflexivity checks — are
// provided here so that the model code in internal/core reads like the
// paper's definitions.
package rel

import (
	"fmt"
	"math/bits"
	"strings"
)

// Rel is a binary relation over {0..n-1} represented as a dense bit matrix.
// The zero value is not usable; create instances with New.
type Rel struct {
	n     int
	words int // words per row
	bits  []uint64
}

// New returns the empty relation over {0..n-1}.
func New(n int) *Rel {
	if n < 0 {
		panic("rel: negative size")
	}
	words := (n + 63) / 64
	return &Rel{n: n, words: words, bits: make([]uint64, n*words)}
}

// Size returns the size of the carrier set.
func (r *Rel) Size() int { return r.n }

// Add adds the pair (i, j) to the relation.
func (r *Rel) Add(i, j int) {
	r.check(i, j)
	r.bits[i*r.words+j/64] |= 1 << uint(j%64)
}

// Remove deletes the pair (i, j) from the relation.
func (r *Rel) Remove(i, j int) {
	r.check(i, j)
	r.bits[i*r.words+j/64] &^= 1 << uint(j%64)
}

// Has reports whether the pair (i, j) is in the relation.
func (r *Rel) Has(i, j int) bool {
	r.check(i, j)
	return r.bits[i*r.words+j/64]&(1<<uint(j%64)) != 0
}

func (r *Rel) check(i, j int) {
	if i < 0 || i >= r.n || j < 0 || j >= r.n {
		panic(fmt.Sprintf("rel: index (%d,%d) out of range for size %d", i, j, r.n))
	}
}

// Clone returns a deep copy.
func (r *Rel) Clone() *Rel {
	c := New(r.n)
	copy(c.bits, r.bits)
	return c
}

// Union adds every pair of s to r (in place) and returns r.
func (r *Rel) Union(s *Rel) *Rel {
	r.sameSize(s)
	for i := range r.bits {
		r.bits[i] |= s.bits[i]
	}
	return r
}

// Minus removes every pair of s from r (in place) and returns r.
func (r *Rel) Minus(s *Rel) *Rel {
	r.sameSize(s)
	for i := range r.bits {
		r.bits[i] &^= s.bits[i]
	}
	return r
}

// Intersect keeps only pairs present in both r and s (in place) and returns r.
func (r *Rel) Intersect(s *Rel) *Rel {
	r.sameSize(s)
	for i := range r.bits {
		r.bits[i] &= s.bits[i]
	}
	return r
}

func (r *Rel) sameSize(s *Rel) {
	if r.n != s.n {
		panic(fmt.Sprintf("rel: size mismatch %d vs %d", r.n, s.n))
	}
}

// UnionOf returns the union of the given relations (all must share a size).
// At least one relation must be supplied.
func UnionOf(rs ...*Rel) *Rel {
	if len(rs) == 0 {
		panic("rel: UnionOf needs at least one relation")
	}
	u := rs[0].Clone()
	for _, s := range rs[1:] {
		u.Union(s)
	}
	return u
}

// Compose returns the relational composition r;s
// = { (i,k) | ∃j. (i,j) ∈ r ∧ (j,k) ∈ s }.
func Compose(r, s *Rel) *Rel {
	r.sameSize(s)
	out := New(r.n)
	for i := 0; i < r.n; i++ {
		row := r.bits[i*r.words : (i+1)*r.words]
		dst := out.bits[i*out.words : (i+1)*out.words]
		for w, word := range row {
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				j := w*64 + b
				src := s.bits[j*s.words : (j+1)*s.words]
				for k := range dst {
					dst[k] |= src[k]
				}
			}
		}
	}
	return out
}

// TransitiveClosure returns the transitive closure r⁺ (not reflexive).
func (r *Rel) TransitiveClosure() *Rel {
	c := r.Clone()
	// Floyd–Warshall over bit rows: for each intermediate j, every i with
	// (i,j) absorbs row j.
	for j := 0; j < c.n; j++ {
		rowJ := c.bits[j*c.words : (j+1)*c.words]
		for i := 0; i < c.n; i++ {
			if i == j || !c.Has(i, j) {
				continue
			}
			rowI := c.bits[i*c.words : (i+1)*c.words]
			for w := range rowI {
				rowI[w] |= rowJ[w]
			}
		}
	}
	return c
}

// ReflexiveTransitiveClosure returns r* = r⁺ ∪ id.
func (r *Rel) ReflexiveTransitiveClosure() *Rel {
	c := r.TransitiveClosure()
	for i := 0; i < c.n; i++ {
		c.Add(i, i)
	}
	return c
}

// Irreflexive reports whether no (i,i) pair is present.
func (r *Rel) Irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.Has(i, i) {
			return false
		}
	}
	return true
}

// Acyclic reports whether the relation, viewed as a directed graph,
// contains no cycle (equivalently, its transitive closure is irreflexive).
func (r *Rel) Acyclic() bool {
	return r.TransitiveClosure().Irreflexive()
}

// Equal reports whether r and s contain exactly the same pairs.
func (r *Rel) Equal(s *Rel) bool {
	if r.n != s.n {
		return false
	}
	for i := range r.bits {
		if r.bits[i] != s.bits[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every pair of r is also in s.
func (r *Rel) SubsetOf(s *Rel) bool {
	r.sameSize(s)
	for i := range r.bits {
		if r.bits[i]&^s.bits[i] != 0 {
			return false
		}
	}
	return true
}

// IsEmpty reports whether the relation has no pairs.
func (r *Rel) IsEmpty() bool {
	for _, w := range r.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of pairs in the relation.
func (r *Rel) Len() int {
	n := 0
	for _, w := range r.bits {
		n += popCount(w)
	}
	return n
}

// Pairs returns all pairs (i,j) in the relation in row-major order.
func (r *Rel) Pairs() [][2]int {
	var out [][2]int
	r.Each(func(i, j int) { out = append(out, [2]int{i, j}) })
	return out
}

// Each calls f for every pair (i, j) in the relation in row-major order.
func (r *Rel) Each(f func(i, j int)) {
	for i := 0; i < r.n; i++ {
		row := r.bits[i*r.words : (i+1)*r.words]
		for w, word := range row {
			for word != 0 {
				b := trailingZeros(word)
				word &^= 1 << uint(b)
				f(i, w*64+b)
			}
		}
	}
}

// Successors returns all j such that (i,j) ∈ r.
func (r *Rel) Successors(i int) []int {
	var out []int
	row := r.bits[i*r.words : (i+1)*r.words]
	for w, word := range row {
		for word != 0 {
			b := trailingZeros(word)
			word &^= 1 << uint(b)
			out = append(out, w*64+b)
		}
	}
	return out
}

// Restrict returns the subrelation of pairs whose endpoints both satisfy keep.
func (r *Rel) Restrict(keep func(int) bool) *Rel {
	out := New(r.n)
	r.Each(func(i, j int) {
		if keep(i) && keep(j) {
			out.Add(i, j)
		}
	})
	return out
}

// Filter returns the subrelation of pairs satisfying keep.
func (r *Rel) Filter(keep func(i, j int) bool) *Rel {
	out := New(r.n)
	r.Each(func(i, j int) {
		if keep(i, j) {
			out.Add(i, j)
		}
	})
	return out
}

// Inverse returns the converse relation { (j,i) | (i,j) ∈ r }.
func (r *Rel) Inverse() *Rel {
	out := New(r.n)
	r.Each(func(i, j int) { out.Add(j, i) })
	return out
}

// TopoSort returns a topological order of {0..n-1} consistent with the
// relation, or ok=false if the relation is cyclic. Ties are broken by
// preferring smaller indices, making the output deterministic.
func (r *Rel) TopoSort() (order []int, ok bool) {
	indeg := make([]int, r.n)
	r.Each(func(i, j int) {
		if i != j {
			indeg[j]++
		} else {
			indeg[j] += r.n + 1 // self loop: never ready
		}
	})
	order = make([]int, 0, r.n)
	ready := make([]bool, r.n)
	for {
		next := -1
		for i := 0; i < r.n; i++ {
			if !ready[i] && indeg[i] == 0 {
				next = i
				break
			}
		}
		if next == -1 {
			break
		}
		ready[next] = true
		order = append(order, next)
		for _, j := range r.Successors(next) {
			if j != next {
				indeg[j]--
			}
		}
	}
	return order, len(order) == r.n
}

// String renders the relation as a list of arrows, for debugging.
func (r *Rel) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	r.Each(func(i, j int) {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d→%d", i, j)
	})
	sb.WriteByte('}')
	return sb.String()
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

func popCount(x uint64) int { return bits.OnesCount64(x) }
