// Package modtx reproduces "Modular Transactions: Bounding Mixed Races in
// Space and Time" (Dongol, Jagadeesan, Riely; PPoPP 2019) as a Go library:
//
//   - an executable axiomatic memory model for transactions with
//     mixed-mode access — well-formed traces, lifted relations,
//     happens-before with the paper's design space of extensions, the
//     consistency axioms, and L-race definitions (internal/event,
//     internal/core);
//   - an exhaustive litmus enumerator and the full catalog of the paper's
//     figures and example programs with expected verdicts (internal/prog,
//     internal/exec, internal/litmus);
//   - bounded checkers for the metatheory: SC-LTRF (Theorem 4.1),
//     aborted-transaction removal (Theorem 4.2), the implementation-model
//     correspondence (Lemma 5.1) and the suborder characterizations
//     (Lemmas C.1/C.2) (internal/ltrf);
//   - the §5 compiler-optimization soundness suite (internal/opt);
//   - a production STM runtime with a pluggable engine registry — lazy,
//     eager (undo-log), global-lock and tl2 (snapshot/invisible-read)
//     strategies behind one protocol — mixed-mode variables, read-only
//     transactions, quiescence fences, and event-driven blocking: an
//     internal commit-notification subsystem wakes transactions parked
//     with Tx.Block (or composed with STM.OrElse) on the next relevant
//     commit instead of polling (internal/stm), plus conformance
//     checking of recorded runs against the model (internal/conform).
//
// This file re-exports the most useful entry points so that module-local
// tools and benchmarks can use one import. See README.md for a tour and
// EXPERIMENTS.md for the paper-versus-measured index.
package modtx

import (
	"context"

	"modtx/internal/cluster"
	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/kv"
	"modtx/internal/ltrf"
	"modtx/internal/prog"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// Model layer.
type (
	// Execution is an event graph with reads-from and coherence orders.
	Execution = event.Execution
	// Builder constructs executions event by event.
	Builder = event.Builder
	// Config selects a model from the paper's design space.
	Config = core.Config
	// Verdict is a consistency-check result.
	Verdict = core.Verdict
	// Program is a litmus program.
	Program = prog.Program
	// Outcome is the observable result of a complete execution.
	Outcome = exec.Outcome
	// TraceSet is an explicitly enumerated program semantics Σ.
	TraceSet = ltrf.TraceSet
)

// Model configurations.
var (
	// Programmer is the §2 model (HBww + Atomww): privatization race-free.
	Programmer = core.Programmer
	// Implementation is the §5 model: fences required for privatization.
	Implementation = core.Implementation
	// TSO includes crw in happens-before, as x86-TSO does (§6).
	TSO = core.TSO
	// Strongest enables all six HB variants and all Atom axioms.
	Strongest = core.Strongest
)

// NewBuilder starts an execution over the named locations (the init
// transaction writing 0 everywhere is added automatically, per WF1).
func NewBuilder(locs ...string) *Builder { return event.NewBuilder(locs...) }

// Check evaluates the consistency axioms of the configuration.
func Check(x *Execution, cfg Config) Verdict { return core.Check(x, cfg) }

// WellFormed returns the violated well-formedness conditions (WF1–WF12) of
// the trace view; empty means well-formed.
func WellFormed(x *Execution) []event.Violation { return event.WellFormed(x) }

// ParseProgram reads a litmus program in the textual format (see
// internal/prog.Parse for the grammar).
func ParseProgram(src string) (*Program, error) { return prog.Parse(src) }

// Outcomes enumerates the reachable outcomes of a program under cfg.
func Outcomes(p *Program, cfg Config) (map[string]*Outcome, error) {
	return exec.Outcomes(p, cfg)
}

// Allowed reports whether some complete consistent execution of p
// satisfies the predicate under cfg.
func Allowed(p *Program, cfg Config, pred func(*Outcome) bool) (bool, error) {
	return exec.Allowed(p, cfg, pred)
}

// GenerateTraces builds the explicit trace-set semantics Σ used by the
// SC-LTRF theorem checker.
func GenerateTraces(p *Program, cfg Config, maxTraces int) (*TraceSet, error) {
	return ltrf.GenerateTraces(p, cfg, maxTraces)
}

// Runtime layer (API v2: typed vars, functional options, context-aware
// execution).
type (
	// STM is a software transactional memory instance.
	STM = stm.STM
	// Var is an int64 transactional variable supporting mixed-mode
	// access — the zero-cost word specialization of TVar.
	Var = stm.Var
	// TVar is a typed transactional variable holding any T behind a
	// word-sized pointer box.
	TVar[T any] = stm.TVar[T]
	// Tx is a transaction handle. Tx.Block parks the transaction until
	// a variable it has read changes (event-driven, no polling); see
	// also STM.OrElse for composable blocking alternatives.
	Tx = stm.Tx
	// ReadTx is the handle of read-only transactions (AtomicallyRead):
	// it can only read, so commit never takes write locks, and on the
	// TL2 snapshot engine reads are invisible (no read set, O(1) commit).
	ReadTx = stm.ReadTx
	// TxError carries diagnostics (attempts, conflicts, engine) for
	// retry-budget exhaustion and cancellation; unwraps to its sentinel.
	TxError = stm.TxError
	// STMOption configures an STM instance (see WithEngine et al.).
	STMOption = stm.Option
	// Queue is a bounded transactional FIFO of T, with blocking
	// PopWait/PushWait built on the commit-notification subsystem.
	Queue[T any] = stm.Queue[T]
	// TMap is a transactional hash map.
	TMap[K comparable, V any] = stm.Map[K, V]
)

// STM engines. The enum is backed by a registry: ParseEngine resolves
// names, Engines enumerates, and each engine's strategy lives behind an
// internal interface — new engines are new registry rows, not new hot
// paths.
const (
	// LazySTM buffers writes and applies them at commit.
	LazySTM = stm.Lazy
	// EagerSTM writes in place with an undo log.
	EagerSTM = stm.Eager
	// GlobalLockSTM serializes transactions under one mutex.
	GlobalLockSTM = stm.GlobalLock
	// TL2STM is the snapshot engine: lazy commits plus timestamp
	// extension and invisible reads (lock-free read-only transactions).
	TL2STM = stm.TL2
)

// Engine is the STM engine selector (see LazySTM et al.).
type Engine = stm.Engine

// Engines returns every registered engine in registry order.
func Engines() []Engine { return stm.Engines() }

// ParseEngine resolves an engine name ("lazy", "eager", "global-lock",
// "tl2" or a registered alias) to its Engine value.
func ParseEngine(name string) (Engine, error) { return stm.ParseEngine(name) }

// EngineNames returns the canonical engine names in registry order.
func EngineNames() []string { return stm.EngineNames() }

// STM instance options.
var (
	// WithEngine selects the versioning strategy (default LazySTM).
	WithEngine = stm.WithEngine
	// WithMaxRetries bounds commit attempts per Atomically call.
	WithMaxRetries = stm.WithMaxRetries
	// WithQuiesceSlots sizes the active-transaction table for Quiesce.
	WithQuiesceSlots = stm.WithQuiesceSlots
)

// Transactional error taxonomy: every runtime failure is errors.Is-able
// against one of these sentinels (see stm.TxError for diagnostics).
var (
	// ErrAborted aborts a transaction without retry when returned from
	// its body.
	ErrAborted = stm.ErrAborted
	// ErrAbort is the v1 name of ErrAborted.
	//
	// Deprecated: use ErrAborted.
	ErrAbort = stm.ErrAborted
	// ErrMaxRetries reports retry-budget exhaustion.
	ErrMaxRetries = stm.ErrMaxRetries
	// ErrCanceled reports context cancellation between retry attempts.
	ErrCanceled = stm.ErrCanceled
)

// NewSTM creates a software transactional memory instance.
func NewSTM(opts ...STMOption) *STM { return stm.New(opts...) }

// NewTVar creates a typed transactional variable on s.
func NewTVar[T any](s *STM, name string, init T) *TVar[T] {
	return stm.NewTVar(s, name, init)
}

// ReadT returns the transactional value of a typed variable.
func ReadT[T any](tx *Tx, v *TVar[T]) T { return stm.ReadT(tx, v) }

// ReadTVar returns the transactional value of a typed variable inside a
// read-only transaction.
func ReadTVar[T any](r *ReadTx, v *TVar[T]) T { return stm.ReadTVar(r, v) }

// WriteT sets the transactional value of a typed variable.
func WriteT[T any](tx *Tx, v *TVar[T], x T) { stm.WriteT(tx, v, x) }

// NewQueue creates a bounded transactional queue on s.
func NewQueue[T any](s *STM, name string, capacity int) *Queue[T] {
	return stm.NewQueue[T](s, name, capacity)
}

// NewTMap creates a transactional hash map on s.
func NewTMap[K comparable, V any](s *STM, name string, buckets int) *TMap[K, V] {
	return stm.NewMap[K, V](s, name, buckets)
}

// AtomicallyMulti runs fn as one transaction spanning several STM
// instances with a two-phase cross-instance commit (see stm.AtomicallyMulti).
func AtomicallyMulti(stms []*STM, fn func(txs []*Tx) error) error {
	return stm.AtomicallyMulti(stms, fn)
}

// AtomicallyMultiCtx is AtomicallyMulti honoring ctx between retry
// attempts.
func AtomicallyMultiCtx(ctx context.Context, stms []*STM, fn func(txs []*Tx) error) error {
	return stm.AtomicallyMultiCtx(ctx, stms, fn)
}

// AtomicallyReadMulti runs fn as one read-only transaction spanning
// several STM instances: a consistent cross-instance snapshot that takes
// no locks at all at commit (see stm.AtomicallyReadMulti).
func AtomicallyReadMulti(stms []*STM, fn func(rtxs []*ReadTx) error) error {
	return stm.AtomicallyReadMulti(stms, fn)
}

// AtomicallyReadMultiCtx is AtomicallyReadMulti honoring ctx between
// retry attempts.
func AtomicallyReadMultiCtx(ctx context.Context, stms []*STM, fn func(rtxs []*ReadTx) error) error {
	return stm.AtomicallyReadMultiCtx(ctx, stms, fn)
}

// Serving layer.
type (
	// KV is a sharded transactional key-value store backed by the STM
	// runtime (see internal/kv and cmd/mtx-kv). Values are arbitrary
	// byte strings; counters ride the int64 specialization. Blocking
	// reads — WaitGet (wait for a key to exist) and Watch (wait for a
	// key to change) — park on the commit-notification subsystem and
	// back the server's BGET/WATCH commands.
	KV = kv.Store
	// KVOption configures a KV store (see KVWithShards et al.).
	KVOption = kv.Option
	// KVTxn is the handle passed to KV.Update transaction bodies.
	KVTxn = kv.Txn
	// KVViewTxn is the handle passed to KV.View read-only snapshot
	// bodies: multi-key reads consistent across shards, no write locks.
	KVViewTxn = kv.ViewTxn
	// KVStats is an aggregate statistics snapshot across shards.
	KVStats = kv.Stats
	// KVEvent is one committed write delivered on a changefeed: shard,
	// per-shard commit sequence number, operation kind, key and payload.
	KVEvent = kv.Event
	// KVSubscription is a prefix changefeed handle (see KV.Subscribe):
	// Events() streams commits in per-shard order; slow consumers drop
	// rather than block committers (Dropped() counts the gap).
	KVSubscription = kv.Subscription
	// KVWALStats is the durability-plane statistics snapshot: append and
	// fsync counts/latencies, recovery summary, changefeed accounting.
	KVWALStats = kv.WALStats
	// WALLevel selects when a durable store's log reaches disk (see
	// WALFsync et al.).
	WALLevel = wal.Level
)

// Write-ahead-log durability levels for KVWithDurability.
const (
	// WALNone appends to the log but leaves flushing to the OS page
	// cache: fast, survives process crashes, not power loss.
	WALNone = wal.None
	// WALBatch fsyncs on a timer off the commit path, bounding loss to
	// the flush interval.
	WALBatch = wal.Batch
	// WALFsync group-commits: every commit waits until its record is on
	// disk, amortizing one fsync over concurrent committers.
	WALFsync = wal.Fsync
)

// KV store options.
var (
	// KVWithShards sets the shard count (rounded up to a power of two).
	KVWithShards = kv.WithShards
	// KVWithEngine selects the STM engine backing every shard.
	KVWithEngine = kv.WithEngine
	// KVWithMaxRetries bounds commit attempts per store operation.
	KVWithMaxRetries = kv.WithMaxRetries
	// KVWithDurability attaches a per-shard write-ahead log under dir;
	// use OpenKV (not NewKV) so recovery errors are reported.
	KVWithDurability = kv.WithDurability
	// KVWithDegradedMode sets the store's response to a latched WAL
	// failure: keep failing writes (default), go read-only, or shed
	// durability and keep serving. See the degraded-mode constants.
	KVWithDegradedMode = kv.WithDegradedMode
	// KVWithWALFS substitutes the filesystem under the write-ahead log —
	// the seam the fault-injection harness (internal/fault) plugs into.
	KVWithWALFS = kv.WithWALFS
)

// KVDegradedMode selects a durable store's response to a latched WAL
// failure (KVWithDegradedMode). The store never silently drops
// durability: every mode either surfaces errors or counts what it shed.
type KVDegradedMode = kv.DegradedMode

// Degraded-mode policies.
const (
	// KVDegradeFail keeps surfacing the WAL error on every write.
	KVDegradeFail = kv.DegradeFail
	// KVDegradeReadOnly rejects writes with ErrKVDegraded; reads serve.
	KVDegradeReadOnly = kv.DegradeReadOnly
	// KVDegradeShed keeps serving writes from memory with durability
	// off, counting each unlogged commit (KVWALStats.ShedWrites).
	KVDegradeShed = kv.DegradeShed
)

// ErrKVWrongType reports a kv operation against a key holding the other
// kind of value (bytes vs. counter).
var ErrKVWrongType = kv.ErrWrongType

// ErrKVDegraded reports a write rejected because the store latched a
// WAL failure under KVDegradeReadOnly; the cause is attached.
var ErrKVDegraded = kv.ErrDegraded

// NewKV creates a sharded transactional key-value store.
func NewKV(opts ...KVOption) *KV { return kv.New(opts...) }

// OpenKV creates a sharded transactional key-value store, recovering
// from the data directory first when KVWithDurability is set. Close a
// durable store to flush and fsync its logs.
func OpenKV(opts ...KVOption) (*KV, error) { return kv.Open(opts...) }

// Replication layer (see internal/cluster and the README's Replication
// section). A primary ships its per-shard WALs plus the cross-shard
// commit marker log; a follower applies them through idempotent replay
// and serves reads under the specified replica semantics: each shard's
// history surfaces as a dense prefix, and cross-shard transactions
// surface atomically at the watermark boundary, never partially.
type (
	// KVReplica is the follower side: it wraps an in-memory KV and
	// applies the primary's record stream (see NewKVReplica).
	KVReplica = kv.Replica
	// KVReplicaStats is the replica's progress snapshot (watermarks,
	// applied counts, readiness).
	KVReplicaStats = kv.ReplicaStats
	// ReplStreamer is the primary side: it serves each connected
	// replica every shard's WAL, catch-up then live tail.
	ReplStreamer = cluster.Streamer
	// ReplClient feeds a primary's stream into a KVReplica,
	// reconnecting with backoff.
	ReplClient = cluster.Client
)

// Replication errors.
var (
	// ErrKVNotDurable reports a replication primary opened without
	// KVWithDurability — there is no log to ship.
	ErrKVNotDurable = kv.ErrNotDurable
	// ErrKVReplicaGap reports a record that does not extend the
	// replica's dense per-shard prefix; the feeder must re-catch-up.
	ErrKVReplicaGap = kv.ErrReplicaGap
)

// NewKVReplica creates a replica over a fresh in-memory store. The
// shard count must match the primary's; durability options are
// rejected (a replica's durability is the primary's log).
func NewKVReplica(opts ...KVOption) (*KVReplica, error) { return kv.NewReplica(opts...) }

// NewReplStreamer wraps a durable KV for replication serving; call
// Serve with a listener to accept replicas.
func NewReplStreamer(s *KV) (*ReplStreamer, error) { return cluster.NewStreamer(s) }
