package modtx_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"modtx"
)

// TestFacadeModelLayer exercises the re-exported model API end to end:
// build Example 2.1, check it, parse and enumerate the privatization
// program.
func TestFacadeModelLayer(t *testing.T) {
	b := modtx.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	x := b.MustBuild()

	if vs := modtx.WellFormed(x); len(vs) != 0 {
		t.Fatalf("not well-formed: %v", vs)
	}
	if v := modtx.Check(x, modtx.Programmer); !v.Consistent {
		t.Fatalf("Example 2.1 inconsistent: %v", v)
	}
	if v := modtx.Check(x, modtx.Implementation); !v.Consistent {
		t.Fatalf("implementation model rejects Example 2.1: %v", v)
	}

	p, err := modtx.ParseProgram(`
name: privatization
locs: x y
thread t1:
  atomic a {
    r := y
    if !r { x := 1 }
  }
thread t2:
  atomic b { y := 1 }
  x := 2
`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := modtx.Outcomes(p, modtx.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	for key, o := range outs {
		if o.Mem["x"] != 2 {
			t.Errorf("programmer model allowed %s", key)
		}
	}
	allowed, err := modtx.Allowed(p, modtx.Implementation, func(o *modtx.Outcome) bool {
		return o.Mem["x"] == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !allowed {
		t.Error("implementation model must allow x=1")
	}

	ts, err := modtx.GenerateTraces(p, modtx.Programmer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if checked, cexs := ts.CheckTheorem41(nil); len(cexs) > 0 {
		t.Fatalf("SC-LTRF counterexample (checked %d): %v", checked, cexs[0])
	}
}

// TestFacadeRuntimeLayer exercises the re-exported v2 STM API: functional
// options, the int64 specialization, typed vars and the error taxonomy.
func TestFacadeRuntimeLayer(t *testing.T) {
	for _, e := range modtx.Engines() {
		s := modtx.NewSTM(modtx.WithEngine(e))
		x := s.NewVar("x", 0)
		label := modtx.NewTVar(s, "label", "init")
		if err := s.Atomically(func(tx *modtx.Tx) error {
			tx.Write(x, tx.Read(x)+41)
			modtx.WriteT(tx, label, modtx.ReadT(tx, label)+"+done")
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Atomically(func(tx *modtx.Tx) error {
			tx.Write(x, 0)
			return modtx.ErrAborted
		}); err != modtx.ErrAborted {
			t.Fatalf("err = %v", err)
		}
		x.Store(x.Load() + 1)
		s.Quiesce(x)
		if got := x.Load(); got != 42 {
			t.Errorf("x = %d, want 42", got)
		}
		if got := label.Load(); got != "init+done" {
			t.Errorf("label = %q, want init+done", got)
		}
	}
	// Context-aware execution and diagnostics through the facade.
	s := modtx.NewSTM(modtx.WithMaxRetries(2))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.AtomicallyCtx(ctx, func(tx *modtx.Tx) error { return nil })
	if !errors.Is(err, modtx.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var txe *modtx.TxError
	if !errors.As(err, &txe) {
		t.Fatalf("err %T lacks TxError diagnostics", err)
	}
}

// TestFacadeContainersAndKV exercises the generic containers and the
// byte-valued KV re-exports.
func TestFacadeContainersAndKV(t *testing.T) {
	s := modtx.NewSTM()
	q := modtx.NewQueue[string](s, "q", 4)
	if ok, err := q.Enqueue("job-1"); err != nil || !ok {
		t.Fatalf("enqueue: %v %v", ok, err)
	}
	if v, ok, err := q.Dequeue(); err != nil || !ok || v != "job-1" {
		t.Fatalf("dequeue: %q %v %v", v, ok, err)
	}
	m := modtx.NewTMap[string, int](s, "m", 8)
	if err := m.Put("k", 7); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := m.Get("k"); !ok || v != 7 {
		t.Fatalf("map get: %d %v", v, ok)
	}

	store := modtx.NewKV(modtx.KVWithShards(4), modtx.KVWithEngine(modtx.LazySTM))
	if err := store.Set("doc", []byte("payload with spaces")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := store.Get("doc"); !ok || string(v) != "payload with spaces" {
		t.Fatalf("kv get: %q %v", v, ok)
	}
	if _, err := store.CounterAdd("hits", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CounterAdd("doc", 1); !errors.Is(err, modtx.ErrKVWrongType) {
		t.Fatalf("wrong-type err = %v", err)
	}
}

// TestFacadeEngineRegistryAndReadOnly exercises the registry and the
// read-only transaction re-exports end to end.
func TestFacadeEngineRegistryAndReadOnly(t *testing.T) {
	e, err := modtx.ParseEngine("tl2")
	if err != nil || e != modtx.TL2STM {
		t.Fatalf("ParseEngine(tl2) = %v, %v", e, err)
	}
	if len(modtx.Engines()) != len(modtx.EngineNames()) {
		t.Fatal("Engines/EngineNames length mismatch")
	}

	s := modtx.NewSTM(modtx.WithEngine(modtx.TL2STM))
	x := s.NewVar("x", 7)
	label := modtx.NewTVar(s, "label", "snap")
	var got int64
	var lbl string
	if err := s.AtomicallyRead(func(r *modtx.ReadTx) error {
		got = r.Read(x)
		lbl = modtx.ReadTVar(r, label)
		return nil
	}); err != nil || got != 7 || lbl != "snap" {
		t.Fatalf("AtomicallyRead: %v, x=%d label=%q", err, got, lbl)
	}

	s2 := modtx.NewSTM(modtx.WithEngine(modtx.TL2STM))
	y := s2.NewVar("y", 3)
	var sum int64
	if err := modtx.AtomicallyReadMulti([]*modtx.STM{s, s2}, func(rtxs []*modtx.ReadTx) error {
		sum = rtxs[0].Read(x) + rtxs[1].Read(y)
		return nil
	}); err != nil || sum != 10 {
		t.Fatalf("AtomicallyReadMulti: %v, sum=%d", err, sum)
	}

	// KV: View and Delete through the facade.
	store := modtx.NewKV(modtx.KVWithShards(4), modtx.KVWithEngine(modtx.TL2STM))
	if err := store.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CounterAdd("n", 5); err != nil {
		t.Fatal(err)
	}
	var av []byte
	var nv int64
	if err := store.View([]string{"a", "n"}, func(v *modtx.KVViewTxn) error {
		av, _ = v.Get("a")
		nv, _ = v.Counter("n")
		return nil
	}); err != nil || string(av) != "1" || nv != 5 {
		t.Fatalf("View: %v, a=%q n=%d", err, av, nv)
	}
	if ok, err := store.Delete("a"); err != nil || !ok {
		t.Fatalf("Delete: %v, %v", ok, err)
	}
	if _, ok, _ := store.Get("a"); ok {
		t.Fatal("deleted key still visible")
	}
}

// TestFacadeBlocking exercises the blocking surface through the facade:
// Tx.Block + OrElse on the STM, PopWait on the queue, WaitGet/Watch on
// the KV store.
func TestFacadeBlocking(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s := modtx.NewSTM(modtx.WithEngine(modtx.TL2STM))
	q := modtx.NewQueue[string](s, "q", 4)
	got := make(chan string, 1)
	go func() {
		v, err := q.PopWait(ctx)
		if err != nil {
			t.Error(err)
		}
		got <- v
	}()
	if err := q.PushWait(ctx, "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("PopWait = %q", v)
		}
	case <-ctx.Done():
		t.Fatal("PopWait lost the wakeup")
	}

	// OrElse: the first non-blocking alternative commits.
	var src string
	if _, err := q.Enqueue("from-q"); err != nil {
		t.Fatal(err)
	}
	err := s.OrElse(
		func(tx *modtx.Tx) error {
			v, ok := q.DequeueTx(tx)
			if !ok {
				tx.Block()
			}
			src = v
			return nil
		},
		func(tx *modtx.Tx) error { src = "fallback"; return nil },
	)
	if err != nil || src != "from-q" {
		t.Fatalf("OrElse: %v, src=%q", err, src)
	}

	store := modtx.NewKV(modtx.KVWithShards(4))
	vc := make(chan []byte, 1)
	go func() {
		v, err := store.WaitGet(ctx, "k")
		if err != nil {
			t.Error(err)
		}
		vc <- v
	}()
	for store.Stats().Waits == 0 && ctx.Err() == nil {
		time.Sleep(time.Millisecond)
	}
	if err := store.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-vc:
		if string(v) != "v" {
			t.Fatalf("WaitGet = %q", v)
		}
	case <-ctx.Done():
		t.Fatal("WaitGet lost the wakeup")
	}
	if st := store.Stats(); st.Waits == 0 || st.Wakeups == 0 {
		t.Fatalf("blocking counters not surfaced: %+v", st)
	}
}

// TestFacadeDurability exercises the durability surface through the
// facade: OpenKV with a write-ahead log, a prefix changefeed, WAL
// statistics, and recovery on reopen.
func TestFacadeDurability(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	dir := t.TempDir()

	store, err := modtx.OpenKV(modtx.KVWithShards(4),
		modtx.KVWithDurability(dir, modtx.WALFsync))
	if err != nil {
		t.Fatal(err)
	}
	sub := store.Subscribe(ctx, "user:")
	if err := store.Set("user:1", []byte("ada")); err != nil {
		t.Fatal(err)
	}
	if err := store.Set("other", []byte("filtered")); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-sub.Events():
		var got modtx.KVEvent = ev
		if got.Key != "user:1" || string(got.Val) != "ada" {
			t.Fatalf("event = %+v", got)
		}
	case <-ctx.Done():
		t.Fatal("changefeed delivered nothing")
	}
	sub.Close()

	var ws modtx.KVWALStats = store.WALStats()
	if ws.Level != modtx.WALFsync.String() || ws.Appends < 2 {
		t.Fatalf("WALStats = %+v", ws)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := modtx.OpenKV(modtx.KVWithShards(4),
		modtx.KVWithDurability(dir, modtx.WALBatch))
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if v, ok, _ := reopened.Get("user:1"); !ok || string(v) != "ada" {
		t.Fatalf("recovered get = %q %v", v, ok)
	}
}
