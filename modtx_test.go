package modtx_test

import (
	"testing"

	"modtx"
)

// TestFacadeModelLayer exercises the re-exported model API end to end:
// build Example 2.1, check it, parse and enumerate the privatization
// program.
func TestFacadeModelLayer(t *testing.T) {
	b := modtx.NewBuilder("x", "y")
	t1 := b.Thread()
	t1.Begin("a")
	t1.R("y", 0)
	wx1 := t1.W("x", 1)
	t1.Commit()
	t2 := b.Thread()
	t2.Begin("b")
	t2.W("y", 1)
	t2.Commit()
	wx2 := t2.W("x", 2)
	b.WWOrder("x", wx1, wx2)
	x := b.MustBuild()

	if vs := modtx.WellFormed(x); len(vs) != 0 {
		t.Fatalf("not well-formed: %v", vs)
	}
	if v := modtx.Check(x, modtx.Programmer); !v.Consistent {
		t.Fatalf("Example 2.1 inconsistent: %v", v)
	}
	if v := modtx.Check(x, modtx.Implementation); !v.Consistent {
		t.Fatalf("implementation model rejects Example 2.1: %v", v)
	}

	p, err := modtx.ParseProgram(`
name: privatization
locs: x y
thread t1:
  atomic a {
    r := y
    if !r { x := 1 }
  }
thread t2:
  atomic b { y := 1 }
  x := 2
`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := modtx.Outcomes(p, modtx.Programmer)
	if err != nil {
		t.Fatal(err)
	}
	for key, o := range outs {
		if o.Mem["x"] != 2 {
			t.Errorf("programmer model allowed %s", key)
		}
	}
	allowed, err := modtx.Allowed(p, modtx.Implementation, func(o *modtx.Outcome) bool {
		return o.Mem["x"] == 1
	})
	if err != nil {
		t.Fatal(err)
	}
	if !allowed {
		t.Error("implementation model must allow x=1")
	}

	ts, err := modtx.GenerateTraces(p, modtx.Programmer, 0)
	if err != nil {
		t.Fatal(err)
	}
	if checked, cexs := ts.CheckTheorem41(nil); len(cexs) > 0 {
		t.Fatalf("SC-LTRF counterexample (checked %d): %v", checked, cexs[0])
	}
}

// TestFacadeRuntimeLayer exercises the re-exported STM API.
func TestFacadeRuntimeLayer(t *testing.T) {
	for _, e := range []modtx.STMOptions{
		{Engine: modtx.LazySTM},
		{Engine: modtx.EagerSTM},
		{Engine: modtx.GlobalLockSTM},
	} {
		s := modtx.NewSTM(e)
		x := s.NewVar("x", 0)
		if err := s.Atomically(func(tx *modtx.Tx) error {
			tx.Write(x, tx.Read(x)+41)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.Atomically(func(tx *modtx.Tx) error {
			tx.Write(x, 0)
			return modtx.ErrAbort
		}); err != modtx.ErrAbort {
			t.Fatalf("err = %v", err)
		}
		x.Store(x.Load() + 1)
		s.Quiesce(x)
		if got := x.Load(); got != 42 {
			t.Errorf("x = %d, want 42", got)
		}
	}
}
