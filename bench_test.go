// Benchmarks regenerating every experiment of DESIGN.md §5: one benchmark
// (or sub-benchmark) per figure/example verdict, per theorem checker, per
// optimization report, and the STM performance experiments S4/S5.
//
// Run with: go test -bench=. -benchmem .
package modtx_test

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"modtx"
	"modtx/internal/core"
	"modtx/internal/kv"
	"modtx/internal/litmus"
	"modtx/internal/ltrf"
	"modtx/internal/opt"
	"modtx/internal/prog"
	"modtx/internal/rel"
	"modtx/internal/stm"
)

// BenchmarkFigures re-checks every paper figure (experiments E05–E33's
// execution-graph entries) per iteration.
func BenchmarkFigures(b *testing.B) {
	for _, f := range litmus.Figures() {
		f := f
		b.Run(f.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range litmus.RunFigure(f) {
					if !r.Pass() {
						b.Fatalf("figure disagreement: %s", r)
					}
				}
			}
		})
	}
}

// BenchmarkPrograms re-enumerates every paper litmus program (experiments
// E01–E33's program entries) per iteration.
func BenchmarkPrograms(b *testing.B) {
	for _, p := range litmus.Programs() {
		p := p
		b.Run(p.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, r := range litmus.RunProgram(p) {
					if !r.Pass() {
						b.Fatalf("program disagreement: %s", r)
					}
				}
			}
		})
	}
}

// BenchmarkTheorem41 regenerates the SC-LTRF check (T41) on the
// privatization program: Σ generation plus the decomposition search.
func BenchmarkTheorem41(b *testing.B) {
	p := litmus.PrivatizationProgram(false)
	for i := 0; i < b.N; i++ {
		ts, err := ltrf.GenerateTraces(p, core.Programmer, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, cexs := ts.CheckTheorem41(nil); len(cexs) > 0 {
			b.Fatalf("counterexample: %v", cexs[0])
		}
	}
}

// BenchmarkTheorem42 regenerates the aborted-removal check (T42).
func BenchmarkTheorem42(b *testing.B) {
	p := litmus.PrivatizationProgram(false)
	ts, err := ltrf.GenerateTraces(p, core.Programmer, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, fails := ts.CheckTheorem42(); len(fails) > 0 {
			b.Fatal("theorem 4.2 failure")
		}
	}
}

// BenchmarkLemmaC1 regenerates the happens-before decomposition check (LC1)
// over the figure catalog.
func BenchmarkLemmaC1(b *testing.B) {
	figs := litmus.Figures()
	for i := 0; i < b.N; i++ {
		for _, f := range figs {
			x := f.Build()
			if missing, extra := ltrf.CheckLemmaC1(x); len(missing)+len(extra) > 0 {
				b.Fatalf("%s: decomposition mismatch", f.ID)
			}
		}
	}
}

// BenchmarkLemmaC2 regenerates the suborder-consistency equivalence (LC2).
func BenchmarkLemmaC2(b *testing.B) {
	figs := litmus.Figures()
	for i := 0; i < b.N; i++ {
		for _, f := range figs {
			x := f.Build()
			if ltrf.ConsistentBySuborders(x) != core.Consistent(x, core.Implementation) {
				b.Fatalf("%s: characterization mismatch", f.ID)
			}
		}
	}
}

// BenchmarkLemma51 regenerates the implementation→programmer transfer (L51)
// on the fenced privatization program.
func BenchmarkLemma51(b *testing.B) {
	p := litmus.PrivatizationProgram(true)
	for i := 0; i < b.N; i++ {
		ts, err := ltrf.GenerateTraces(p, core.Implementation, 0)
		if err != nil {
			b.Fatal(err)
		}
		for _, tau := range ts.Traces {
			if app, holds := ltrf.CheckLemma51(tau); app && !holds {
				b.Fatal("lemma 5.1 failure")
			}
		}
	}
}

// BenchmarkOptimizations regenerates the §5 transformation suite (O1–O5).
func BenchmarkOptimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reps, err := opt.StandardReports()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range reps {
			if r.Sound != r.Expected {
				b.Fatalf("%s: verdict mismatch", r.Transform)
			}
		}
	}
}

// BenchmarkHBFixpoint measures the happens-before computation on the
// cascade figure (the deepest HBww fixpoint in the catalog).
func BenchmarkHBFixpoint(b *testing.B) {
	var cascade litmus.Figure
	for _, f := range litmus.Figures() {
		if f.ID == "E09" {
			cascade = f
		}
	}
	x := cascade.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.Consistent(x, core.Programmer) {
			b.Fatal("cascade inconsistent")
		}
	}
}

// BenchmarkRelClosure measures the bitset relation substrate.
func BenchmarkRelClosure(b *testing.B) {
	r := rel.New(64)
	for i := 0; i < 63; i++ {
		r.Add(i, i+1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.TransitiveClosure().Irreflexive() {
			b.Fatal("chain became cyclic")
		}
	}
}

// BenchmarkEnumerator measures exhaustive enumeration throughput
// (candidates per second) on the IRIW program.
func BenchmarkEnumerator(b *testing.B) {
	p := &prog.Program{
		Name: "iriw-bench",
		Locs: []string{"x", "y", "z"},
		Threads: []prog.Thread{
			{Name: "t1", Body: []prog.Stmt{prog.Atomic{Name: "wx", Body: []prog.Stmt{prog.Write{Loc: prog.At("x"), Val: prog.Const(1)}}}}},
			{Name: "t2", Body: []prog.Stmt{prog.Atomic{Name: "wy", Body: []prog.Stmt{prog.Write{Loc: prog.At("y"), Val: prog.Const(1)}}}}},
			{Name: "t3", Body: []prog.Stmt{
				prog.Atomic{Name: "c1", Body: []prog.Stmt{prog.Read{RegName: "r1", Loc: prog.At("x")}}},
				prog.Write{Loc: prog.At("z"), Val: prog.Const(1)},
				prog.Atomic{Name: "c2", Body: []prog.Stmt{prog.Read{RegName: "r2", Loc: prog.At("y")}}},
			}},
			{Name: "t4", Body: []prog.Stmt{
				prog.Atomic{Name: "d1", Body: []prog.Stmt{prog.Read{RegName: "q1", Loc: prog.At("y")}}},
				prog.Write{Loc: prog.At("z"), Val: prog.Const(2)},
				prog.Atomic{Name: "d2", Body: []prog.Stmt{prog.Read{RegName: "q2", Loc: prog.At("x")}}},
			}},
		},
	}
	for i := 0; i < b.N; i++ {
		if _, err := modtx.Outcomes(p, modtx.Programmer); err != nil {
			b.Fatal(err)
		}
	}
}

// --- STM performance experiments (S4, S5) ---

// stmEngines is every registered engine; the registry drives the whole
// benchmark matrix, so a new engine is a new row, not a code change.
var stmEngines = stm.Engines()

// BenchmarkSTMCounter (S5): contended read-modify-write throughput per
// engine.
func BenchmarkSTMCounter(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			s := stm.New(stm.WithEngine(e))
			c := s.NewVar("c", 0)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = s.Atomically(func(tx *stm.Tx) error {
						tx.Write(c, tx.Read(c)+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkSTMReadOnly (S5): read-only transaction throughput over a
// shared array (no conflicts), comparing the default read-write path
// (Atomically with an empty write set) against the dedicated read-only
// API (AtomicallyRead) per engine. On the tl2 engine AtomicallyRead runs
// with invisible reads: no read set, no allocation, O(1) commit.
func BenchmarkSTMReadOnly(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		s := stm.New(stm.WithEngine(e))
		vars := make([]*stm.Var, 16)
		for i := range vars {
			vars[i] = s.NewVar(fmt.Sprintf("v%d", i), int64(i))
		}
		b.Run(e.String()+"/atomically", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = s.Atomically(func(tx *stm.Tx) error {
						var sum int64
						for _, v := range vars {
							sum += tx.Read(v)
						}
						_ = sum
						return nil
					})
				}
			})
		})
		b.Run(e.String()+"/read", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = s.AtomicallyRead(func(r *stm.ReadTx) error {
						var sum int64
						for _, v := range vars {
							sum += r.Read(v)
						}
						_ = sum
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkSTMBank (S5): bank-transfer workload over 64 accounts.
func BenchmarkSTMBank(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			s := stm.New(stm.WithEngine(e))
			accts := make([]*stm.Var, 64)
			for i := range accts {
				accts[i] = s.NewVar(fmt.Sprintf("a%d", i), 1000)
			}
			var ctr int
			var mu sync.Mutex
			nextPair := func() (int, int) {
				mu.Lock()
				defer mu.Unlock()
				ctr++
				return ctr % 64, (ctr*7 + 13) % 64
			}
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					from, to := nextPair()
					if from == to {
						continue
					}
					_ = s.Atomically(func(tx *stm.Tx) error {
						bal := tx.Read(accts[from])
						tx.Write(accts[from], bal-1)
						tx.Write(accts[to], tx.Read(accts[to])+1)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkSTMCommitHeavy (S8): write-only commits on disjoint variables
// per clock mode, on the tl2 engine. Each parallel worker owns its
// variable, so the only shared state is the version clock itself — the
// coherence hotspot the clock variants exist to compare. Run with
// -cpu 1,4,16 for the scaling curve; the deferred clock's shared
// max-CAS should pull ahead of GV1's per-commit fetch-add as the
// worker count grows.
func BenchmarkSTMCommitHeavy(b *testing.B) {
	for _, cm := range stm.ClockModes() {
		cm := cm
		b.Run(cm.String(), func(b *testing.B) {
			s := stm.New(stm.WithEngine(stm.TL2), stm.WithClock(cm))
			vars := make([]*stm.Var, 64)
			for i := range vars {
				vars[i] = s.NewVar(fmt.Sprintf("w%d", i), 0)
			}
			var widx atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				v := vars[int(widx.Add(1)-1)&63]
				var n int64
				for pb.Next() {
					n++
					_ = s.Atomically(func(tx *stm.Tx) error {
						tx.Write(v, n)
						return nil
					})
				}
			})
		})
	}
}

// BenchmarkKVReadHeavy (S8): the 90/10 read/write mix per engine over
// transactional single-key operations — the scaling acceptance workload.
// Run with -cpu 1,4,16; at 16 procs every engine must at least hold its
// single-proc throughput (the bench-trajectory gate), and the snapshot
// engines should scale with reader parallelism.
func BenchmarkKVReadHeavy(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%04d", i)
			}
			store.EnsureCounters(keys...)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					k := keys[(i*131)&1023]
					if i%10 == 0 {
						err := store.Update([]string{k}, func(t *kv.Txn) error {
							t.Add(k, 1)
							return nil
						})
						if err != nil {
							b.Fatal(err)
						}
					} else {
						err := store.View([]string{k}, func(t *kv.ViewTxn) error {
							_, _ = t.Counter(k)
							return nil
						})
						if err != nil {
							b.Fatal(err)
						}
					}
				}
			})
		})
	}
}

// BenchmarkSTMFence (S4): quiescence-fence overhead — the privatization
// pattern with and without Quiesce, mirroring the §6 discussion of fence
// cost.
func BenchmarkSTMFence(b *testing.B) {
	for _, fenced := range []bool{false, true} {
		name := "unfenced"
		if fenced {
			name = "quiesce"
		}
		b.Run(name, func(b *testing.B) {
			s := stm.New(stm.WithEngine(stm.Lazy))
			x := s.NewVar("x", 0)
			y := s.NewVar("y", 0)
			for i := 0; i < b.N; i++ {
				_ = s.Atomically(func(tx *stm.Tx) error {
					tx.Write(y, 1)
					return nil
				})
				if fenced {
					s.Quiesce(x)
				}
				x.Store(int64(i))
			}
		})
	}
}

// BenchmarkSTMPlainAccess (S4): mixed-mode plain access runs at native
// atomic speed (the model's "non-volatile accesses are not slowed" claim).
func BenchmarkSTMPlainAccess(b *testing.B) {
	s := stm.New(stm.WithEngine(stm.Lazy))
	x := s.NewVar("x", 0)
	b.Run("store", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x.Store(int64(i))
		}
	})
	b.Run("load", func(b *testing.B) {
		var sink int64
		for i := 0; i < b.N; i++ {
			sink += x.Load()
		}
		_ = sink
	})
}

// BenchmarkSTMStressSuite (S1–S3): the probabilistic stress scenarios.
func BenchmarkSTMStressSuite(b *testing.B) {
	b.Run("privatization-fenced", func(b *testing.B) {
		s := stm.New(stm.WithEngine(stm.Lazy))
		for i := 0; i < b.N; i++ {
			if r := stm.Privatization(s, 1, true); r.Violations != 0 {
				b.Fatal("fenced privatization violated")
			}
		}
	})
	b.Run("publication", func(b *testing.B) {
		s := stm.New(stm.WithEngine(stm.Lazy))
		for i := 0; i < b.N; i++ {
			if r := stm.Publication(s, 1); r.Violations != 0 {
				b.Fatal("publication violated")
			}
		}
	})
}

// BenchmarkKVFastPath (S6): the internal/kv lock-free plain-read path on
// the int64 specialization — one atomic pointer load, one map lookup, one
// atomic value load, no boxing.
func BenchmarkKVFastPath(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%04d", i)
			}
			store.EnsureCounters(keys...)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := store.FastCounterGet(keys[i&1023]); !ok {
						b.Fatal("missing key")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkKVFastPathBytes (S6): the same plain-read path on byte values
// (typed lane): one extra pointer indirection over the specialization.
func BenchmarkKVFastPathBytes(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			vals := make(map[string][]byte, 1024)
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%04d", i)
				vals[keys[i]] = []byte("payload")
			}
			if err := store.MSet(vals); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := store.FastGet(keys[i&1023]); !ok {
						b.Fatal("missing key")
					}
					i++
				}
			})
		})
	}
}

// BenchmarkKVReadOnly (S6): consistent multi-key reads (8 counters
// spread across shards), comparing the read-write transaction path
// (Update) against the lock-free read-only snapshot path (View). The
// acceptance check of the engine redesign: View on tl2 must beat the
// Update-based read.
func BenchmarkKVReadOnly(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		store := kv.New(kv.WithShards(64), kv.WithEngine(e))
		keys := make([]string, 1024)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%04d", i)
		}
		store.EnsureCounters(keys...)
		pick := func(i int) []string {
			batch := make([]string, 8)
			for j := range batch {
				batch[j] = keys[(i*131+j*17)&1023]
			}
			return batch
		}
		b.Run(e.String()+"/update", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					batch := pick(i)
					i++
					err := store.Update(batch, func(t *kv.Txn) error {
						for _, k := range batch {
							_, _ = t.Get(k)
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		b.Run(e.String()+"/view", func(b *testing.B) {
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					batch := pick(i)
					i++
					err := store.View(batch, func(t *kv.ViewTxn) error {
						for _, k := range batch {
							_, _ = t.Counter(k)
						}
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkKVCrossShardTxn (S6): two-key transfers that two-phase across
// shards via stm.AtomicallyMulti.
func BenchmarkKVCrossShardTxn(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			keys := make([]string, 1024)
			for i := range keys {
				keys[i] = fmt.Sprintf("key-%04d", i)
			}
			store.EnsureCounters(keys...)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					from := keys[i&1023]
					to := keys[(i*7+13)&1023]
					i++
					if from == to {
						continue
					}
					err := store.Update([]string{from, to}, func(t *kv.Txn) error {
						t.Add(from, -1)
						t.Add(to, 1)
						return nil
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// --- Blocking & composition experiments (S7) ---

// BenchmarkSTMBlocked (S7): wakeup latency of the commit-notification
// subsystem — a round-trip handoff between two goroutines through two
// one-slot queues, where every PopWait parks until the peer's enqueue
// commits. Each op is one full park→notify→wake→dequeue round trip on
// each side; before the event-driven rework the same pattern cost up to
// two 4ms backoff sleeps per hop.
func BenchmarkSTMBlocked(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String(), func(b *testing.B) {
			s := stm.New(stm.WithEngine(e))
			ping := stm.NewQueue[int](s, "ping", 1)
			pong := stm.NewQueue[int](s, "pong", 1)
			ctx := context.Background()
			go func() {
				for {
					v, err := ping.PopWait(ctx)
					if err != nil || v < 0 {
						return
					}
					if err := pong.PushWait(ctx, v); err != nil {
						return
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ping.PushWait(ctx, i); err != nil {
					b.Fatal(err)
				}
				if _, err := pong.PopWait(ctx); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = ping.PushWait(ctx, -1) // stop the echo goroutine
		})
	}
}

// BenchmarkKVWaitGet (S7): the blocking read path of the KV store.
// The hit case measures WaitGet on a present key — the non-blocking
// fast path, which must stay within sight of plain Get; the handoff
// case measures a blocking value handoff between two goroutines via
// WatchFrom (park → Set commit → notified wakeup → read), the KV
// equivalent of the STMBlocked round trip.
func BenchmarkKVWaitGet(b *testing.B) {
	for _, e := range stmEngines {
		e := e
		b.Run(e.String()+"/hit", func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			if err := store.Set("k", []byte("v")); err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := store.WaitGet(ctx, "k"); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(e.String()+"/handoff", func(b *testing.B) {
			store := kv.New(kv.WithShards(64), kv.WithEngine(e))
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			if err := store.Set("ping", []byte("0")); err != nil {
				b.Fatal(err)
			}
			if err := store.Set("pong", []byte("0")); err != nil {
				b.Fatal(err)
			}
			go func() {
				last := []byte("0")
				for {
					v, ok, err := store.WatchFrom(ctx, "ping", last, true)
					if err != nil || !ok {
						return
					}
					last = v
					if err := store.Set("pong", v); err != nil {
						return
					}
				}
			}()
			lastPong := []byte("0")
			buf := make([]byte, 0, 20)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = strconv.AppendInt(buf[:0], int64(i+1), 10)
				if err := store.Set("ping", buf); err != nil {
					b.Fatal(err)
				}
				v, ok, err := store.WatchFrom(ctx, "pong", lastPong, true)
				if err != nil || !ok {
					b.Fatal(err)
				}
				lastPong = append(lastPong[:0], v...)
			}
		})
	}
}
