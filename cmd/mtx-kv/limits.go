// Server overload protection: connection and admission limits that keep
// an overloaded or misbehaving client population from taking the store
// down with it.
//
// Three independent valves, each opt-in via a serve/replica flag:
//
//   - -maxconns caps simultaneous connections with accept backpressure:
//     when the house is full the server simply stops accepting, so
//     excess dials queue in the kernel's listen backlog (and time out
//     there) instead of each costing a goroutine and a scanner buffer.
//   - -maxinflight caps concurrently executing store commands. The cap
//     is enforced at dispatch with a token channel: a command that
//     cannot get a token is refused with "ERR overloaded" immediately —
//     shedding load at the door is what keeps latency bounded for the
//     commands that do get in. Parked blocking commands (BGET/WATCH)
//     hold their token while they wait: a thousand parked waiters ARE
//     load, and admission is the only thing that bounds them.
//   - -idletimeout drops connections that send nothing for the duration
//     (and bounds how long a write to a stalled client may block).
//     SUBSCRIBE streams are exempt by design: a quiet subscriber is
//     normal.
//
// Shed commands are counted (mtxkv_shed_total in /metrics) — refusing
// work silently would make an overload look like a traffic drop.
package main

import (
	"flag"
	"strings"
	"sync/atomic"
	"time"
)

// defaultMaxReq bounds a request line when -maxreq is not given.
const defaultMaxReq = 1 << 20

// limits is the server's overload-protection state, embedded in server.
type limits struct {
	maxConns    int           // simultaneous connections; 0 = unlimited
	maxInflight int           // concurrently executing store commands; 0 = unlimited
	idle        time.Duration // idle read/write deadline; 0 = none
	maxReq      int           // request line byte cap; 0 = defaultMaxReq
	blockCap    time.Duration // BGET/WATCH timeout cap; 0 = maxBlockTimeout

	inflight chan struct{} // admission tokens, sized maxInflight
	shed     atomic.Uint64 // commands refused with ERR overloaded
	panics   atomic.Uint64 // connection handlers recovered from a panic
}

// limitFlags registers the overload-protection flags shared by serve
// and replica on fs, returning a function that builds the limits from
// the parsed values.
func limitFlags(fs *flag.FlagSet) func() limits {
	maxConns := fs.Int("maxconns", 0,
		"maximum simultaneous client connections; excess dials wait in the listen backlog (0 = unlimited)")
	maxInflight := fs.Int("maxinflight", 0,
		"maximum concurrently executing store commands; excess answer ERR overloaded (0 = unlimited)")
	idle := fs.Duration("idletimeout", 0,
		"drop connections idle this long, and bound stalled writes the same way (0 = never); SUBSCRIBE reads are exempt")
	maxReq := fs.Int("maxreq", defaultMaxReq,
		"maximum request line bytes; longer requests answer ERR request too large and disconnect")
	return func() limits {
		return limits{maxConns: *maxConns, maxInflight: *maxInflight, idle: *idle, maxReq: *maxReq}
	}
}

// initLimits materializes the token channel; called once before serving.
func (s *server) initLimits() {
	if s.maxInflight > 0 && s.inflight == nil {
		s.inflight = make(chan struct{}, s.maxInflight)
	}
}

// reqCap returns the effective request line cap.
func (s *server) reqCap() int {
	if s.maxReq > 0 {
		return s.maxReq
	}
	return defaultMaxReq
}

// blockTimeoutCap returns the effective BGET/WATCH timeout ceiling.
func (s *server) blockTimeoutCap() time.Duration {
	if s.blockCap > 0 {
		return s.blockCap
	}
	return maxBlockTimeout
}

// admissionExempt reports verbs that bypass the in-flight cap: they run
// no store transaction (PING, QUIT) or are the observability surface an
// operator needs most while the server is overloaded (STATS).
func admissionExempt(verb string) bool {
	switch verb {
	case "PING", "QUIT", "STATS":
		return true
	}
	return false
}

// execAdmitted is exec behind the admission valve: non-exempt commands
// must take an in-flight token or are shed with "ERR overloaded".
func (s *server) execAdmitted(reply []byte, line string) (resp []byte, quit bool) {
	if s.inflight != nil {
		verb := strings.ToUpper(strings.Fields(line)[0])
		if !admissionExempt(verb) {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.shed.Add(1)
				return append(reply, "ERR overloaded"...), false
			}
		}
	}
	return s.exec(reply, line)
}
