package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"modtx/internal/kv"
	"modtx/internal/obs"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// benchReport is the machine-readable form of one bench invocation
// (-json): the workload configuration plus one row per engine. It is the
// wire format of the repo's perf trajectory (see BENCH_PR4.json and the
// CI bench artifact), so field names are stable.
type benchReport struct {
	Keys       int               `json:"keys"`
	Shards     int               `json:"shards"`
	Goroutines int               `json:"goroutines"`
	Procs      int               `json:"procs"`           // GOMAXPROCS during the run
	Clock      string            `json:"clock,omitempty"` // version-clock mode ("shared" omitted)
	DurationMs int64             `json:"duration_ms"`
	FastPct    int               `json:"fastread_pct"`
	ReadPct    int               `json:"read_pct"`
	WritePct   int               `json:"write_pct"`
	TxnPct     int               `json:"txn_pct"`
	Zipf       float64           `json:"zipf"`
	Durability string            `json:"durability,omitempty"` // "off" omitted
	Engines    []benchEngineJSON `json:"engines"`
}

type benchEngineJSON struct {
	Engine    string      `json:"engine"`
	Ops       uint64      `json:"ops"`
	OpsPerSec float64     `json:"ops_per_sec"`
	P50Ns     int64       `json:"p50_ns"`
	P95Ns     int64       `json:"p95_ns"`
	P99Ns     int64       `json:"p99_ns"`
	P999Ns    int64       `json:"p999_ns"`
	MaxNs     int64       `json:"max_ns"`
	Conflicts uint64      `json:"conflicts"`
	Errors    uint64      `json:"errors"`
	Shed      uint64      `json:"shed"`
	HotKeys   []kv.HotKey `json:"hot_keys"`
}

// runBench drives the store in-process with a configurable mixed workload
// and reports throughput and latency percentiles per engine, as a table
// or (-json) as a machine-readable report on stdout.
func runBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	engineName := fs.String("engine", "all", engineFlagHelp(true))
	clockName := fs.String("clock", "shared", "version-clock mode: "+strings.Join(stm.ClockNames(), ", "))
	procs := fs.Int("procs", 0, "set GOMAXPROCS for the run (0: leave the runtime default); use for 1/4/16 scaling sweeps")
	shards := fs.Int("shards", 64, "shard count (rounded up to a power of two)")
	nkeys := fs.Int("keys", 65536, "number of preloaded keys")
	goroutines := fs.Int("goroutines", 8, "concurrent load goroutines")
	duration := fs.Duration("duration", 2*time.Second, "run time per engine")
	fastPct := fs.Int("fastread-pct", 70, "percent of ops that are lock-free FastGets")
	readPct := fs.Int("read-pct", 20, "percent of ops that are transactional Gets")
	writePct := fs.Int("write-pct", 5, "percent of ops that are transactional Sets (remainder: cross-key TXN transfers)")
	zipfS := fs.Float64("zipf", 1.2, "Zipf skew parameter s (<=1 means uniform key choice)")
	durability := fs.String("durability", "off",
		"write-ahead log level for the benched store: off, none, batch, fsync")
	dataDir := fs.String("data", "",
		"durability directory with -durability (default: a temp dir, removed afterwards)")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fastPct+*readPct+*writePct > 100 {
		return fmt.Errorf("op percentages exceed 100")
	}
	engines, err := enginesForFlag(*engineName)
	if err != nil {
		return err
	}
	clock, err := stm.ParseClock(*clockName)
	if err != nil {
		return err
	}
	if *procs > 0 {
		runtime.GOMAXPROCS(*procs)
	}
	// durOpts builds the per-engine durability options: each engine gets
	// its own subdirectory so a matrix run never recovers a predecessor's
	// state.
	durOpts := func(string) []kv.Option { return nil }
	if *durability != "off" {
		level, err := wal.ParseLevel(*durability)
		if err != nil {
			return err
		}
		base := *dataDir
		if base == "" {
			base, err = os.MkdirTemp("", "mtx-kv-bench-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(base)
		}
		durOpts = func(engine string) []kv.Option {
			return []kv.Option{kv.WithDurability(filepath.Join(base, engine), level)}
		}
	}

	if !*asJSON {
		fmt.Printf("mtx-kv bench: %d keys, %d shards, %d goroutines, %v per engine, durability %s, clock %s, GOMAXPROCS %d\n",
			*nkeys, *shards, *goroutines, *duration, *durability, clock, runtime.GOMAXPROCS(0))
		fmt.Printf("op mix: %d%% fastget / %d%% get / %d%% set / %d%% txn-transfer, zipf=%.2f\n\n",
			*fastPct, *readPct, *writePct, 100-*fastPct-*readPct-*writePct, *zipfS)
		fmt.Printf("%-12s %12s %12s %10s %10s %10s %10s %10s %12s %8s %8s\n",
			"engine", "ops", "ops/sec", "p50", "p95", "p99", "p999", "max", "conflicts", "errors", "shed")
	}

	report := benchReport{
		Keys:       *nkeys,
		Shards:     *shards,
		Goroutines: *goroutines,
		Procs:      runtime.GOMAXPROCS(0),
		DurationMs: duration.Milliseconds(),
		FastPct:    *fastPct,
		ReadPct:    *readPct,
		WritePct:   *writePct,
		TxnPct:     100 - *fastPct - *readPct - *writePct,
		Zipf:       *zipfS,
	}
	if *durability != "off" {
		report.Durability = *durability
	}
	if clock != stm.ClockShared {
		report.Clock = clock.String()
	}
	for _, e := range engines {
		r, err := benchOne(e, clock, *shards, *nkeys, *goroutines, *duration, *fastPct, *readPct, *writePct, *zipfS,
			durOpts(e.String()))
		if err != nil {
			return err
		}
		if *asJSON {
			report.Engines = append(report.Engines, benchEngineJSON{
				Engine:    e.String(),
				Ops:       r.ops,
				OpsPerSec: r.opsPerSec,
				P50Ns:     r.p50.Nanoseconds(),
				P95Ns:     r.p95.Nanoseconds(),
				P99Ns:     r.p99.Nanoseconds(),
				P999Ns:    r.p999.Nanoseconds(),
				MaxNs:     r.max.Nanoseconds(),
				Conflicts: r.conflicts,
				Errors:    r.errs,
				Shed:      r.shed,
				HotKeys:   r.hot,
			})
			continue
		}
		fmt.Printf("%-12s %12d %12.0f %10v %10v %10v %10v %10v %12d %8d %8d\n",
			e, r.ops, r.opsPerSec, r.p50, r.p95, r.p99, r.p999, r.max, r.conflicts, r.errs, r.shed)
		if len(r.hot) > 0 {
			fmt.Printf("%-12s hot keys:", "")
			for _, h := range r.hot {
				fmt.Printf(" %s(%d)", h.Key, h.Count)
			}
			fmt.Println()
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

type benchResult struct {
	ops                      uint64
	opsPerSec                float64
	p50, p95, p99, p999, max time.Duration
	conflicts                uint64
	errs                     uint64 // operations that returned an error
	shed                     uint64 // commits acknowledged without durability (degraded shed mode)
	hot                      []kv.HotKey
}

// benchOne runs the workload against a fresh store on one engine.
// extra carries the durability options, if any; the store is closed at
// the end so a durable run flushes its logs before the next engine (or
// temp-dir removal).
func benchOne(e stm.Engine, clock stm.ClockMode, shards, nkeys, goroutines int, dur time.Duration,
	fastPct, readPct, writePct int, zipfS float64, extra []kv.Option) (benchResult, error) {

	s, err := kv.Open(append([]kv.Option{kv.WithShards(shards), kv.WithEngine(e), kv.WithClock(clock)}, extra...)...)
	if err != nil {
		return benchResult{}, err
	}
	defer s.Close()
	keys := make([]string, nkeys)
	ctrs := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%08d", i)
		ctrs[i] = fmt.Sprintf("ctr-%08d", i)
	}
	s.EnsureKeys(keys...)
	s.EnsureCounters(ctrs...)
	val := []byte("benchmark-payload-value")

	var ops, opErrs atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// One obs.Histogram per goroutine: the write side is two atomic adds
	// into a private cache-line-padded array (no slice growth, no sort at
	// the end), and the snapshots merge exactly. Quantiles are then upper
	// bounds with log-bucket (2x) resolution, which is what the admin
	// plane reports too — the bench and the server agree on the math.
	hists := make([]obs.Histogram, goroutines)

	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			var zipf *rand.Zipf
			if zipfS > 1 {
				zipf = rand.NewZipf(rng, zipfS, 1, uint64(nkeys-1))
			}
			pickIdx := func() int {
				if zipf != nil {
					return int(zipf.Uint64())
				}
				return rng.Intn(nkeys)
			}
			h := &hists[g]
			var n, nerr uint64
			for {
				select {
				case <-stop:
					ops.Add(n)
					opErrs.Add(nerr)
					return
				default:
				}
				p := rng.Intn(100)
				// Sample every 16th op's latency to keep the timer
				// overhead off the hot path.
				sample := n&15 == 0
				var start time.Time
				if sample {
					start = time.Now()
				}
				// Errors are counted, not dropped: a degraded or read-only
				// store failing every write would otherwise report as a
				// healthy run with inflated throughput.
				switch {
				case p < fastPct:
					s.FastGet(keys[pickIdx()])
				case p < fastPct+readPct:
					if _, _, err := s.Get(keys[pickIdx()]); err != nil {
						nerr++
					}
				case p < fastPct+readPct+writePct:
					if err := s.Set(keys[pickIdx()], val); err != nil {
						nerr++
					}
				default:
					from, to := ctrs[pickIdx()], ctrs[pickIdx()]
					if from == to {
						break
					}
					if err := s.Update([]string{from, to}, func(t *kv.Txn) error {
						t.Add(from, -1)
						t.Add(to, 1)
						return nil
					}); err != nil {
						nerr++
					}
				}
				if sample {
					h.Observe(time.Since(start).Nanoseconds())
				}
				n++
			}
		}(g)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()

	var agg obs.Snapshot
	for g := range hists {
		agg.Merge(hists[g].Snapshot())
	}
	pct := func(p float64) time.Duration {
		return time.Duration(agg.Quantile(p))
	}
	st := s.Stats()
	total := ops.Load()
	return benchResult{
		ops:       total,
		opsPerSec: float64(total) / dur.Seconds(),
		p50:       pct(0.50),
		p95:       pct(0.95),
		p99:       pct(0.99),
		p999:      pct(0.999),
		max:       pct(1.0),
		conflicts: st.Conflicts,
		errs:      opErrs.Load(),
		shed:      s.WALStats().ShedWrites,
		hot:       s.HotKeys(8),
	}, nil
}
