// The admin plane: an HTTP listener (opt-in via serve -admin) exposing
// the store's observability surface for operators and scrapers, plus the
// JSON-emitting STATS wire subcommands shared with the line protocol.
//
//	/metrics      Prometheus text format (op/STM latency histograms,
//	              cumulative counters, WAL/changefeed durability
//	              counters, hot-key contention gauges)
//	/debug/vars   expvar JSON (the same data, one document)
//	/debug/pprof  the standard Go profiler endpoints
//	/healthz      liveness ("ok")
//
// The admin plane is read-only (RESET is deliberately wire-protocol
// only) and shares nothing with the data path beyond the store's
// snapshot methods, so a scrape cannot slow a transaction down.
package main

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"modtx/internal/kv"
	"modtx/internal/obs"
)

// adminMux builds the admin-plane handler for one store. It is a
// separate function (rather than inlined into runServe) so loopback
// tests can mount it on httptest servers.
func adminMux(store *kv.Store) *http.ServeMux {
	return adminMuxFor(&server{store: store})
}

// adminMuxFor is adminMux with the server's replication role attached,
// so /metrics includes the streamer or replica gauges when one exists.
func adminMuxFor(srv *server) *http.ServeMux {
	store := srv.store
	publishExpvars(store)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Degraded is a health failure even when the store still serves
		// (shed-durability): orchestrators should rotate traffic away and
		// operators should page. The body names the cause.
		if deg, err := store.Degraded(); deg {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "degraded: %v\n", err)
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(renderServerMetrics(renderReplMetrics(renderMetrics(store), srv), srv))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	// net/http/pprof registers on http.DefaultServeMux as an import side
	// effect; mount the handlers explicitly so the admin mux works
	// standalone and nothing else in the process leaks endpoints here.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// expvar publication: Publish panics on duplicate names, but tests (and
// in principle future multi-store processes) build several muxes per
// process. The published Func therefore reads through an atomic pointer
// that adminMux retargets at the most recent store.
var (
	expvarOnce  sync.Once
	expvarStore atomic.Pointer[kv.Store]
)

func publishExpvars(store *kv.Store) {
	expvarStore.Store(store)
	expvarOnce.Do(func() {
		expvar.Publish("mtxkv", expvar.Func(func() any {
			s := expvarStore.Load()
			if s == nil {
				return nil
			}
			return map[string]any{
				"stats":     s.Stats(),
				"shards":    s.ShardStats(),
				"latencies": histReportFor(s),
				"hot_keys":  hotKeysFor(s),
				"wal":       s.WALStats(),
			}
		}))
	})
}

// histReport is the machine-readable latency document: one snapshot per
// instrumented store operation plus the merged STM-level distributions.
// It backs both STATS HIST and the expvar tree.
type histReport struct {
	Ops map[string]obs.Snapshot `json:"ops"`
	Stm kv.StmLatencies         `json:"stm"`
}

func histReportFor(s *kv.Store) histReport {
	r := histReport{Ops: make(map[string]obs.Snapshot, len(kv.Ops())), Stm: s.StmLatencies()}
	for _, op := range kv.Ops() {
		r.Ops[op.String()] = s.OpLatency(op)
	}
	return r
}

// hotKeysFor bounds the wire/scrape hot-key profile and never returns
// nil, so disabled-metrics stores marshal as [] rather than null.
func hotKeysFor(s *kv.Store) []kv.HotKey {
	hot := s.HotKeys(16)
	if hot == nil {
		hot = []kv.HotKey{}
	}
	return hot
}

// appendStatsJSON marshals v onto the reply buffer for the STATS wire
// subcommands. json.Marshal output is newline-free, so the reply stays a
// single protocol line.
func appendStatsJSON(reply []byte, v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return appendErr(reply, "marshal: ", err)
	}
	return append(reply, b...)
}

// renderMetrics produces the Prometheus text exposition of the store:
// latency histograms with cumulative le buckets, the cumulative
// transaction counters, and the hot-key contention profile.
func renderMetrics(s *kv.Store) []byte {
	b := make([]byte, 0, 8192)

	b = append(b, "# HELP mtxkv_op_latency_ns Sampled store operation latency in nanoseconds.\n"...)
	b = append(b, "# TYPE mtxkv_op_latency_ns histogram\n"...)
	for _, op := range kv.Ops() {
		b = appendPromHist(b, "mtxkv_op_latency_ns", `op="`+op.String()+`"`, s.OpLatency(op))
	}

	lat := s.StmLatencies()
	b = append(b, "# HELP mtxkv_stm_latency_ns Sampled STM-level latency in nanoseconds by kind (commit, read_only, park).\n"...)
	b = append(b, "# TYPE mtxkv_stm_latency_ns histogram\n"...)
	b = appendPromHist(b, "mtxkv_stm_latency_ns", `kind="commit"`, lat.CommitNs)
	b = appendPromHist(b, "mtxkv_stm_latency_ns", `kind="read_only"`, lat.ReadOnlyNs)
	b = appendPromHist(b, "mtxkv_stm_latency_ns", `kind="park"`, lat.ParkNs)
	b = append(b, "# HELP mtxkv_stm_txn_attempts Attempts per sampled committed transaction.\n"...)
	b = append(b, "# TYPE mtxkv_stm_txn_attempts histogram\n"...)
	b = appendPromHist(b, "mtxkv_stm_txn_attempts", "", lat.Attempts)

	st := s.Stats()
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"mtxkv_fast_gets_total", "Lock-free plain reads served.", st.FastGets},
		{"mtxkv_commits_total", "Committed read-write transactions.", st.Commits},
		{"mtxkv_conflicts_total", "Conflicted transaction attempts.", st.Conflicts},
		{"mtxkv_user_aborts_total", "Transactions aborted by user error.", st.UserAborts},
		{"mtxkv_multi_commits_total", "Committed cross-shard transactions.", st.MultiCommits},
		{"mtxkv_read_only_commits_total", "Committed read-only transactions.", st.ReadOnlyCommits},
		{"mtxkv_quiesces_total", "Privatization quiescence fences.", st.Quiesces},
		{"mtxkv_waits_total", "Transactions parked on commit notification.", st.Waits},
		{"mtxkv_wakeups_total", "Parked transactions woken by commits.", st.Wakeups},
		{"mtxkv_spurious_wakeups_total", "Wakeups whose recheck went back to sleep.", st.SpuriousWakeups},
	} {
		b = append(b, "# HELP "+c.name+" "+c.help+"\n"...)
		b = append(b, "# TYPE "+c.name+" counter\n"...)
		b = append(b, c.name+" "...)
		b = strconv.AppendUint(b, c.v, 10)
		b = append(b, '\n')
	}

	b = append(b, "# HELP mtxkv_shards Shard count.\n# TYPE mtxkv_shards gauge\nmtxkv_shards "...)
	b = strconv.AppendInt(b, int64(st.Shards), 10)
	b = append(b, "\n# HELP mtxkv_keys Resident keys.\n# TYPE mtxkv_keys gauge\nmtxkv_keys "...)
	b = strconv.AppendInt(b, int64(st.Keys), 10)
	b = append(b, '\n')

	// Durability + changefeed. All of this renders (as zeros and a
	// level of "off") on a non-durable store, so dashboards need no
	// conditional scrape config.
	ws := s.WALStats()
	b = append(b, "# HELP mtxkv_wal_append_ns WAL record append (encode + buffer) latency in nanoseconds.\n"...)
	b = append(b, "# TYPE mtxkv_wal_append_ns histogram\n"...)
	b = appendPromHist(b, "mtxkv_wal_append_ns", "", ws.AppendNs)
	b = append(b, "# HELP mtxkv_wal_fsync_ns WAL group-commit write+fsync latency in nanoseconds.\n"...)
	b = append(b, "# TYPE mtxkv_wal_fsync_ns histogram\n"...)
	b = appendPromHist(b, "mtxkv_wal_fsync_ns", "", ws.FsyncNs)
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"mtxkv_wal_appends_total", "WAL records appended.", ws.Appends},
		{"mtxkv_wal_batches_total", "WAL group-commit batches drained.", ws.Batches},
		{"mtxkv_wal_fsyncs_total", "WAL fsync calls.", ws.Fsyncs},
		{"mtxkv_wal_bytes_total", "WAL bytes written.", ws.Bytes},
		{"mtxkv_wal_rotations_total", "WAL segment rotations.", ws.Rotations},
		{"mtxkv_wal_truncations_total", "Torn WAL tails repaired during recovery.", ws.Truncations},
		{"mtxkv_wal_checkpoints_total", "Snapshot checkpoints taken.", ws.Checkpoints},
		{"mtxkv_changefeed_dropped_total", "Changefeed events dropped on slow subscribers.", ws.ChangefeedDropped},
	} {
		b = append(b, "# HELP "+c.name+" "+c.help+"\n"...)
		b = append(b, "# TYPE "+c.name+" counter\n"...)
		b = append(b, c.name+" "...)
		b = strconv.AppendUint(b, c.v, 10)
		b = append(b, '\n')
	}
	b = append(b, "# HELP mtxkv_changefeed_subscribers Registered changefeed subscriptions.\n"...)
	b = append(b, "# TYPE mtxkv_changefeed_subscribers gauge\nmtxkv_changefeed_subscribers "...)
	b = strconv.AppendInt(b, int64(ws.Subscribers), 10)
	b = append(b, "\n# HELP mtxkv_wal_level Durability level as an info gauge (1 = active level).\n"...)
	b = append(b, "# TYPE mtxkv_wal_level gauge\nmtxkv_wal_level{level=\""+ws.Level+"\"} 1\n"...)

	b = append(b, "# HELP mtxkv_hot_key_conflicts Approximate conflicts attributed to the hottest keys.\n"...)
	b = append(b, "# TYPE mtxkv_hot_key_conflicts gauge\n"...)
	for _, h := range hotKeysFor(s) {
		b = append(b, `mtxkv_hot_key_conflicts{key="`...)
		b = appendEscapedLabel(b, h.Key)
		b = append(b, `",shard="`...)
		b = strconv.AppendInt(b, int64(h.Shard), 10)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, h.Count, 10)
		b = append(b, '\n')
	}
	return b
}

// renderServerMetrics appends the overload-protection and degraded-mode
// series: whether the store has latched a WAL failure, how many commits
// it acknowledged without durability, how many commands admission shed,
// and how many handler panics were contained.
func renderServerMetrics(b []byte, srv *server) []byte {
	ws := srv.store.WALStats()
	b = append(b, "# HELP mtxkv_degraded Store has latched a WAL failure (1 = degraded).\n"...)
	b = append(b, "# TYPE mtxkv_degraded gauge\nmtxkv_degraded "...)
	if ws.Degraded {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	b = append(b, "\n# HELP mtxkv_degraded_mode Configured WAL-failure policy (1 = active mode).\n"...)
	b = append(b, "# TYPE mtxkv_degraded_mode gauge\nmtxkv_degraded_mode{mode=\""...)
	b = append(b, srv.store.DegradedMode().String()...)
	b = append(b, "\"} 1\n"...)
	for _, c := range []struct {
		name, help string
		v          uint64
	}{
		{"mtxkv_wal_shed_writes_total", "Commits acknowledged without durability while degraded (shed-durability mode).", ws.ShedWrites},
		{"mtxkv_shed_total", "Commands refused with ERR overloaded by admission control.", srv.shed.Load()},
		{"mtxkv_conn_panics_total", "Connection handler panics recovered (each cost one connection).", srv.panics.Load()},
	} {
		b = append(b, "# HELP "+c.name+" "+c.help+"\n# TYPE "+c.name+" counter\n"+c.name+" "...)
		b = strconv.AppendUint(b, c.v, 10)
		b = append(b, '\n')
	}
	return b
}

// appendPromHist renders one histogram series in Prometheus text format:
// cumulative counts at each non-empty bucket's inclusive upper bound,
// the mandatory +Inf bucket, then _sum and _count. Skipping empty
// buckets keeps the exposition compact; cumulative values make that
// lossless for quantile estimation.
func appendPromHist(b []byte, name, labels string, s obs.Snapshot) []byte {
	sep := ""
	if labels != "" {
		sep = ","
	}
	suffix := "" // "{labels}" on _sum/_count, omitted when unlabeled
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		if i == obs.NumBuckets-1 {
			continue // the unbounded bucket is the +Inf line below
		}
		b = append(b, name+"_bucket{"+labels+sep+`le="`...)
		b = strconv.AppendInt(b, obs.BucketUpper(i), 10)
		b = append(b, `"} `...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, '\n')
	}
	b = append(b, name+"_bucket{"+labels+sep+`le="+Inf"} `...)
	b = strconv.AppendUint(b, s.Count, 10)
	b = append(b, '\n')
	b = append(b, name+"_sum"+suffix+" "...)
	b = strconv.AppendUint(b, s.Sum, 10)
	b = append(b, '\n')
	b = append(b, name+"_count"+suffix+" "...)
	b = strconv.AppendUint(b, s.Count, 10)
	b = append(b, '\n')
	return b
}

// appendEscapedLabel escapes a Prometheus label value: backslash, quote
// and newline, per the exposition format.
func appendEscapedLabel(b []byte, v string) []byte {
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, v[i])
		}
	}
	return b
}
