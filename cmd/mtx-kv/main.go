// Command mtx-kv serves a sharded transactional key-value store
// (internal/kv) over a minimal RESP-like text protocol, and ships a
// built-in load generator for per-engine performance comparison.
//
// Usage:
//
//	mtx-kv serve [-addr :7700] [-shards 64] [-engine lazy]
//	mtx-kv bench [-engine all] [-shards 64] [-keys 65536] [-goroutines 8]
//	             [-duration 2s] [-fastread-pct 70] [-read-pct 20]
//	             [-write-pct 5] [-zipf 1.2]
//
// Protocol (one command per line, space-separated; responses are one line):
//
//	PING                      -> PONG
//	GET key                   -> VALUE n | NIL
//	FGET key                  -> VALUE n | NIL      (lock-free plain read)
//	SET key n                 -> OK
//	ADD key d                 -> VALUE n            (new value)
//	MGET k1 k2 ...            -> VALUES v1 v2 ...   (nil for missing keys)
//	MSET k1 v1 k2 v2 ...      -> OK
//	TXN ADD k1 d1 k2 d2 ...   -> VALUES n1 n2 ...   (one cross-shard txn)
//	STATS                     -> STATS ...
//	QUIT                      -> BYE (connection closes)
package main

import (
	"fmt"
	"os"

	"modtx/internal/stm"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "serve":
		if err := runServe(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv serve:", err)
			os.Exit(1)
		}
	case "bench":
		if err := runBench(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv bench:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		fmt.Println("usage: mtx-kv {serve|bench} [flags]  (see -h of each subcommand)")
	default:
		fmt.Fprintf(os.Stderr, "mtx-kv: unknown subcommand %q (want serve or bench)\n", cmd)
		os.Exit(2)
	}
}

// parseEngine maps a flag value to engines; "all" returns every engine.
func parseEngine(name string) ([]stm.Engine, error) {
	switch name {
	case "lazy":
		return []stm.Engine{stm.Lazy}, nil
	case "eager":
		return []stm.Engine{stm.Eager}, nil
	case "global-lock", "global":
		return []stm.Engine{stm.GlobalLock}, nil
	case "all":
		return []stm.Engine{stm.Lazy, stm.Eager, stm.GlobalLock}, nil
	}
	return nil, fmt.Errorf("unknown engine %q (want lazy, eager, global-lock or all)", name)
}
