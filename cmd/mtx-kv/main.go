// Command mtx-kv serves a sharded transactional key-value store
// (internal/kv) over a minimal RESP-like text protocol, and ships a
// built-in load generator for per-engine performance comparison.
//
// Usage:
//
//	mtx-kv serve [-addr :7700] [-shards 64] [-engine lazy]
//	mtx-kv bench [-engine all] [-shards 64] [-keys 65536] [-goroutines 8]
//	             [-duration 2s] [-fastread-pct 70] [-read-pct 20]
//	             [-write-pct 5] [-zipf 1.2]
//
// Protocol (one command per line). Values are arbitrary byte strings
// without newlines: SET takes everything after the key, so values may
// contain spaces. A key holds either a string value or an int64 counter
// (ADD / TXN ADD), fixed at first use; reads format counters as decimal.
//
//	PING                      -> PONG
//	GET key                   -> VALUE v | NIL
//	FGET key                  -> VALUE v | NIL      (lock-free plain read)
//	SET key value...          -> OK                 (value = rest of line)
//	ADD key d                 -> VALUE n            (counter; new value)
//	MGET k1 k2 ...            -> VALUES n, then one VALUE v | NIL line per key
//	MSET k1 v1 k2 v2 ...      -> OK                 (token values, no spaces)
//	TXN ADD k1 d1 k2 d2 ...   -> VALUES n1 n2 ...   (one cross-shard txn)
//	STATS                     -> STATS ...
//	QUIT                      -> BYE (connection closes)
package main

import (
	"fmt"
	"os"

	"modtx/internal/stm"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "serve":
		if err := runServe(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv serve:", err)
			os.Exit(1)
		}
	case "bench":
		if err := runBench(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv bench:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		fmt.Println("usage: mtx-kv {serve|bench} [flags]  (see -h of each subcommand)")
	default:
		fmt.Fprintf(os.Stderr, "mtx-kv: unknown subcommand %q (want serve or bench)\n", cmd)
		os.Exit(2)
	}
}

// parseEngine maps a flag value to engines; "all" returns every engine.
func parseEngine(name string) ([]stm.Engine, error) {
	switch name {
	case "lazy":
		return []stm.Engine{stm.Lazy}, nil
	case "eager":
		return []stm.Engine{stm.Eager}, nil
	case "global-lock", "global":
		return []stm.Engine{stm.GlobalLock}, nil
	case "all":
		return []stm.Engine{stm.Lazy, stm.Eager, stm.GlobalLock}, nil
	}
	return nil, fmt.Errorf("unknown engine %q (want lazy, eager, global-lock or all)", name)
}
