// Command mtx-kv serves a sharded transactional key-value store
// (internal/kv) over a minimal RESP-like text protocol, and ships a
// built-in load generator for per-engine performance comparison.
//
// Usage:
//
//	mtx-kv serve [-addr :7700] [-shards 64] [-engine lazy]
//	             [-data DIR] [-durability fsync] [-degraded-mode fail]
//	             [-replicate-addr :7800]
//	             [-admin :6060] [-slowtxn 1ms]
//	             [-maxconns 0] [-maxinflight 0] [-idletimeout 0] [-maxreq 1048576]
//	mtx-kv replica -primary host:7800 [-addr :7701] [-engine lazy]
//	             [-admin :6061] [-slowtxn 1ms]
//	             [-maxconns 0] [-maxinflight 0] [-idletimeout 0] [-maxreq 1048576]
//	mtx-kv bench [-engine all] [-clock shared] [-procs 0] [-shards 64]
//	             [-keys 65536] [-goroutines 8]
//	             [-duration 2s] [-fastread-pct 70] [-read-pct 20]
//	             [-write-pct 5] [-zipf 1.2]
//	             [-durability off] [-data DIR] [-json]
//
// With -data, serve recovers the store from DIR's per-shard write-ahead
// logs and snapshots on boot, then logs every commit at the chosen
// -durability level: fsync (group commit — every acknowledged write is
// on disk), batch (interval fsync), or none (OS page cache only; the
// log survives process crashes but not power loss). A clean shutdown
// (SIGINT/SIGTERM) flushes and fsyncs the logs; after a kill, the next
// boot repairs and replays a commit-order prefix. bench accepts the
// same pair to measure logging cost; its default "off" benches the
// undisturbed in-memory store.
//
// -degraded-mode picks the policy after a WAL write or sync failure
// latches a shard's log (the store never silently drops durability):
// fail keeps surfacing the error on every write, readonly rejects
// writes but serves reads, and shed-durability keeps serving while
// counting every commit the dead log refused (mtxkv_wal_shed_writes_total).
// A degraded store answers /healthz with 503 naming the cause.
//
// The overload valves (all opt-in): -maxconns caps simultaneous
// connections with accept backpressure (excess dials wait in the listen
// backlog), -maxinflight caps concurrently executing store commands —
// excess answer "ERR overloaded" immediately (PING/QUIT/STATS are
// exempt so operators keep visibility), -idletimeout drops silent
// connections and bounds stalled writes (SUBSCRIBE reads exempt), and
// -maxreq bounds a request line; longer requests answer "ERR request
// too large" and disconnect. A panic in one connection handler costs
// that connection only. See cmd/mtx-kv/limits.go.
//
// With -replicate-addr (requires -data), serve additionally ships every
// shard's WAL — and the cross-shard commit marker log — to connected
// replicas over TCP: catch-up from segments (or the latest snapshot when
// the cursor predates compaction), then the live tail. mtx-kv replica
// dials that address, mirrors the primary's shard count, and serves the
// read-side commands from its local store while applying the stream;
// mutating commands answer "ERR read-only replica". See the README's
// Replication section for what a replica observer may see (per-shard
// prefix always; cross-shard transactions atomically, never partially).
//
// With -json, bench emits a machine-readable report (workload config +
// per-engine ops/sec and latency percentiles) on stdout — the same
// trajectory format CI uploads as an artifact; see also
// cmd/mtx-bench2json for converting `go test -bench` output.
//
// The -engine flag accepts any name from the stm engine registry (lazy,
// eager, global-lock, tl2, adaptive) or "all" (bench only) to run the
// whole matrix. bench additionally takes -clock (shared or deferred —
// the per-shard version-clock mode, see stm.ClockModes) and -procs
// (set GOMAXPROCS for 1/4/16 scaling sweeps; the JSON report records
// both).
//
// Protocol (one command per line). Values are arbitrary byte strings
// without newlines: SET takes everything after the key, so values may
// contain spaces. A key holds either a string value or an int64 counter
// (ADD / TXN ADD), fixed at first use (deleting it frees the kind);
// reads format counters as decimal.
//
//	PING                      -> PONG
//	GET key                   -> VALUE v | NIL      (read-only txn; no write locks)
//	FGET key                  -> VALUE v | NIL      (lock-free plain read)
//	BGET key timeoutMs        -> VALUE v | TIMEOUT  (blocking GET: parks until the
//	                             key exists, waking on the creating commit)
//	WATCH key [timeoutMs]     -> VALUE v | NIL | TIMEOUT (blocks until the key's
//	                             value or existence changes; NIL = deleted;
//	                             default timeout 60s; both commands cap the
//	                             timeout at 10min)
//	SET key value...          -> OK                 (value = rest of line)
//	DEL k1 k2 ...             -> VALUE n            (keys removed; one txn per key)
//	ADD key d                 -> VALUE n            (counter; new value)
//	MGET k1 k2 ...            -> VALUES n, then one VALUE v | NIL line per key
//	                             (one consistent lock-free cross-shard snapshot)
//	MSET k1 v1 k2 v2 ...      -> OK                 (token values, no spaces)
//	TXN ADD k1 d1 k2 d2 ...   -> VALUES n1 n2 ...   (one cross-shard txn)
//	TXN DEL k1 k2 ...         -> VALUES b1 b2 ...   (1 if removed, else 0; one txn)
//	SUBSCRIBE [prefix]        -> OK subscribed, then a stream of
//	                             EVENT seq op key [value] lines, one per
//	                             committed write under the prefix in
//	                             per-shard commit order (op = set, cset,
//	                             del; cset carries the counter's new
//	                             value). A slow reader loses events, each
//	                             loss reported as a cumulative DROPPED n
//	                             line. Any input (or disconnect) ends the
//	                             stream; the connection leaves command
//	                             mode for good.
//	STATS                     -> STATS ...          (aggregate counters)
//	STATS SHARDS              -> per-shard stats, one JSON line
//	STATS HIST                -> op + STM latency histograms, one JSON line
//	STATS HOT                 -> hottest keys by attributed conflicts, JSON
//	STATS WAL                 -> durability + changefeed stats, JSON
//	STATS REPL                -> replication role + progress, JSON
//	STATS RESET               -> OK                 (zero histograms/contention)
//	QUIT                      -> BYE (connection closes)
//
// With -admin, serve additionally listens on an HTTP admin plane:
// /metrics (Prometheus text), /debug/vars (expvar), /debug/pprof/*
// (profiler) and /healthz. With -slowtxn, commands slower than the
// threshold are logged through log/slog with the verb, duration and
// remote address.
package main

import (
	"fmt"
	"os"
	"strings"

	"modtx/internal/stm"
)

func main() {
	args := os.Args[1:]
	cmd := "serve"
	if len(args) > 0 {
		cmd = args[0]
		args = args[1:]
	}
	switch cmd {
	case "serve":
		if err := runServe(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv serve:", err)
			os.Exit(1)
		}
	case "replica":
		if err := runReplica(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv replica:", err)
			os.Exit(1)
		}
	case "bench":
		if err := runBench(args); err != nil {
			fmt.Fprintln(os.Stderr, "mtx-kv bench:", err)
			os.Exit(1)
		}
	case "-h", "--help", "help":
		fmt.Println("usage: mtx-kv {serve|replica|bench} [flags]  (see -h of each subcommand)")
	default:
		fmt.Fprintf(os.Stderr, "mtx-kv: unknown subcommand %q (want serve, replica or bench)\n", cmd)
		os.Exit(2)
	}
}

// enginesForFlag resolves an -engine value through the stm registry;
// "all" expands to every registered engine, so new engines join the
// bench matrix automatically.
func enginesForFlag(name string) ([]stm.Engine, error) {
	if name == "all" {
		return stm.Engines(), nil
	}
	e, err := stm.ParseEngine(name)
	if err != nil {
		return nil, err
	}
	return []stm.Engine{e}, nil
}

// engineFlagHelp enumerates the registry for flag usage strings.
func engineFlagHelp(withAll bool) string {
	names := stm.EngineNames()
	if withAll {
		names = append(names, "all")
	}
	return "STM engine: " + strings.Join(names, ", ")
}
