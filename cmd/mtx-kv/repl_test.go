package main

import (
	"bufio"
	"encoding/json"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"modtx/internal/cluster"
	"modtx/internal/kv"
	"modtx/internal/wal"
)

// protoClient is a tiny line-protocol client for driving serveUntil
// end to end.
type protoClient struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialProto(t *testing.T, addr string) *protoClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	return &protoClient{t: t, conn: conn, r: bufio.NewReader(conn)}
}

func (c *protoClient) roundtrip(cmd string) string {
	c.t.Helper()
	if _, err := c.conn.Write([]byte(cmd + "\n")); err != nil {
		c.t.Fatal(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		c.t.Fatal(err)
	}
	return strings.TrimRight(line, "\n")
}

// TestServeGracefulShutdown drives the whole SIGTERM path in-process:
// writes (including a cross-shard TXN) through a live connection, then
// a signal — and asserts the shutdown was clean enough that the next
// boot performs no recovery-repair work at all: no torn tails, no
// cross-shard rollbacks, all data present.
func TestServeGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	open := func() *kv.Store {
		t.Helper()
		s, err := kv.Open(kv.WithShards(4), kv.WithDurability(dir, wal.Fsync))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	srv := &server{store: open(), drainWait: 200 * time.Millisecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntil(srv, l, stop) }()

	c := dialProto(t, l.Addr().String())
	if got := c.roundtrip("SET alpha durable value"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	if got := c.roundtrip("TXN ADD c1 3 c2 -3"); got != "VALUES 3 -3" {
		t.Fatalf("TXN ADD: %q", got)
	}
	// Leave the connection open: the drain must not hang on an idle
	// keep-alive — it force-closes it after drainWait.
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
	c.conn.Close()

	// A clean stop leaves nothing to repair: recovery replays the log
	// without truncating a byte or rolling back a transaction.
	s2 := open()
	defer s2.Close()
	ri := s2.WALStats().Recover
	if ri.Truncations != 0 || ri.TruncatedBytes != 0 || ri.TxnRollbacks != 0 {
		t.Fatalf("recovery repaired after a clean stop: %+v", ri)
	}
	if v, ok, _ := s2.Get("alpha"); !ok || string(v) != "durable value" {
		t.Fatalf("alpha = %q, %v after restart", v, ok)
	}
	if v, ok, _ := s2.CounterGet("c1"); !ok || v != 3 {
		t.Fatalf("c1 = %d, %v after restart", v, ok)
	}
}

// TestServeGracefulShutdownDrainsInFlight checks the drain half: a
// command in flight when the signal lands still completes and the
// client reads its full reply before the connection dies.
func TestServeGracefulShutdownDrainsInFlight(t *testing.T) {
	srv := &server{store: kv.New(kv.WithShards(2)), drainWait: 5 * time.Second}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serveUntil(srv, l, stop) }()

	c := dialProto(t, l.Addr().String())
	if got := c.roundtrip("SET k v"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	// BGET parks server-side; the signal arrives while it waits. The
	// shutdown must drain it: the writer below satisfies the wait and
	// the parked connection still gets its VALUE line.
	bgetDone := make(chan string, 1)
	var sent atomic.Bool
	go func() {
		sent.Store(true)
		bgetDone <- c.roundtrip("BGET later 5000")
	}()
	for !sent.Load() {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let BGET park
	stop <- syscall.SIGTERM
	time.Sleep(20 * time.Millisecond) // listener closed, drain running
	if err := srv.store.Set("later", []byte("arrived")); err != nil {
		t.Fatal(err)
	}
	if got := <-bgetDone; got != "VALUE arrived" {
		t.Fatalf("parked BGET across shutdown: %q", got)
	}
	c.conn.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}

// TestReadOnlyReplicaCommands pins the replica server surface: every
// mutating verb answers ERR read-only replica, reads work, and STATS
// REPL emits the merged replica document.
func TestReadOnlyReplicaCommands(t *testing.T) {
	r, err := kv.NewReplica(kv.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Store().Close()
	client := &cluster.Client{Addr: "primary.invalid:7800", Replica: r}
	srv := &server{store: r.Store(), readonly: true, repl: client, replica: r}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	// Seed through the replication apply path, not the wire.
	if err := r.ApplyRecord(wal.Record{Shard: uint32(r.Store().ShardOf("seeded")), Seq: 1,
		Ops: []wal.Op{{Kind: wal.KindSet, Key: "seeded", Val: []byte("from-primary")}}}); err != nil {
		t.Fatal(err)
	}

	c := dialProto(t, l.Addr().String())
	defer c.conn.Close()
	for _, cmd := range []string{
		"SET k v", "DEL k", "ADD ctr 1", "MSET a 1 b 2", "TXN ADD a 1 b -1",
	} {
		if got := c.roundtrip(cmd); got != "ERR read-only replica" {
			t.Fatalf("%s on replica: %q", cmd, got)
		}
	}
	if got := c.roundtrip("GET seeded"); got != "VALUE from-primary" {
		t.Fatalf("GET on replica: %q", got)
	}
	if got := c.roundtrip("FGET seeded"); got != "VALUE from-primary" {
		t.Fatalf("FGET on replica: %q", got)
	}

	var doc struct {
		Role       string   `json:"role"`
		Primary    string   `json:"primary"`
		Shards     int      `json:"shards"`
		Watermarks []uint64 `json:"watermarks"`
		Applied    uint64   `json:"applied"`
	}
	line := c.roundtrip("STATS REPL")
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("STATS REPL %q: %v", line, err)
	}
	if doc.Role != "replica" || doc.Primary != "primary.invalid:7800" ||
		doc.Shards != 4 || doc.Applied != 1 {
		t.Fatalf("STATS REPL doc: %+v", doc)
	}
}

// TestStatsReplPrimary checks the primary-side STATS REPL document and
// that a serve-shaped server without any replication role still answers.
func TestStatsReplPrimary(t *testing.T) {
	dir := t.TempDir()
	store, err := kv.Open(kv.WithShards(2), kv.WithDurability(dir, wal.None))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	st, err := cluster.NewStreamer(store)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := &server{store: store, streamer: st}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	c := dialProto(t, l.Addr().String())
	defer c.conn.Close()
	var doc cluster.StreamerStats
	line := c.roundtrip("STATS REPL")
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("STATS REPL %q: %v", line, err)
	}
	if doc.Role != "primary" {
		t.Fatalf("role = %q, want primary", doc.Role)
	}

	// No role at all: still a JSON object, role "none".
	plain := &server{store: kv.New(kv.WithShards(1))}
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go plain.serve(l2)
	c2 := dialProto(t, l2.Addr().String())
	defer c2.conn.Close()
	if got := c2.roundtrip("STATS REPL"); got != `{"role":"none"}` {
		t.Fatalf("STATS REPL without a role: %q", got)
	}
}
