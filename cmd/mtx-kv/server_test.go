package main

import (
	"bufio"
	"encoding/json"
	"log/slog"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"modtx/internal/kv"
	"modtx/internal/obs"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// TestServerProtocol drives the TCP server end to end over a loopback
// connection on every registered engine, including arbitrary
// (space-containing) string values, the counter lane, and deletion.
func TestServerProtocol(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			srv := &server{store: kv.New(kv.WithShards(4), kv.WithEngine(e))}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go srv.serve(l)

			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			readLine := func() string {
				t.Helper()
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatal(err)
				}
				return strings.TrimRight(line, "\n")
			}
			roundtrip := func(cmd string) string {
				t.Helper()
				if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
					t.Fatal(err)
				}
				return readLine()
			}

			for _, tc := range []struct{ cmd, want string }{
				{"PING", "PONG"},
				{"GET a", "NIL"},
				{"SET a some value with spaces", "OK"},
				{"GET a", "VALUE some value with spaces"},
				{"FGET a", "VALUE some value with spaces"},
				{"SET a short", "OK"},
				{"GET a", "VALUE short"},
				{"SET   sp\t padded  value", "OK"}, // token runs must not shift the key
				{"GET sp", "VALUE padded  value"},
				{"ADD ctr 3", "VALUE 3"},
				{"ADD ctr 5", "VALUE 8"},
				{"GET ctr", "VALUE 8"}, // counters read back as decimal
				{"FGET ctr", "VALUE 8"},
				{"ADD a 1", "ERR " + `kv: key "a": ` + kv.ErrWrongType.Error()},
				{"MSET x 1 y two z 3", "OK"},
				{"TXN ADD c1 -1 c2 1", "VALUES -1 1"},
				{"SET a", "ERR usage: SET key value"},
				{"TXN MUL x 2", "ERR unknown TXN op MUL (want ADD or DEL)"},
				{"NOPE", "ERR unknown command NOPE"},
				// Deletion round trips: DEL counts removals, the key is gone
				// on every path, and the freed key can change kind.
				{"DEL a missing", "VALUE 1"},
				{"GET a", "NIL"},
				{"FGET a", "NIL"},
				{"DEL a", "VALUE 0"},
				{"DEL ctr", "VALUE 1"},
				{"SET ctr was a counter", "OK"},
				{"GET ctr", "VALUE was a counter"},
				{"TXN DEL x y nope", "VALUES 1 1 0"},
				{"GET x", "NIL"},
				{"GET z", "VALUE 3"},
				{"DEL", "ERR usage: DEL key..."},
				{"TXN DEL", "ERR usage: TXN DEL key..."},
			} {
				if got := roundtrip(tc.cmd); got != tc.want {
					t.Errorf("%s: got %q, want %q", tc.cmd, got, tc.want)
				}
			}

			// MGET replies with a count header and one line per key; x was
			// deleted above and must be NIL.
			if got := roundtrip("MGET x y z missing"); got != "VALUES 4" {
				t.Fatalf("MGET header: got %q", got)
			}
			for i, want := range []string{"NIL", "NIL", "VALUE 3", "NIL"} {
				if got := readLine(); got != want {
					t.Errorf("MGET line %d: got %q, want %q", i, got, want)
				}
			}

			if got := roundtrip("STATS"); !strings.HasPrefix(got, "STATS kv: shards=4") {
				t.Errorf("STATS: got %q", got)
			}
			if got := roundtrip("QUIT"); got != "BYE" {
				t.Errorf("QUIT: got %q", got)
			}
		})
	}
}

// TestServerBlockingCommands drives BGET and WATCH over two loopback
// connections: one parks server-side, the other commits the change that
// wakes it. Also pins the TIMEOUT replies and usage errors.
func TestServerBlockingCommands(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			srv := &server{store: kv.New(kv.WithShards(4), kv.WithEngine(e))}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go srv.serve(l)

			dial := func() (net.Conn, *bufio.Reader) {
				t.Helper()
				conn, err := net.Dial("tcp", l.Addr().String())
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { conn.Close() })
				return conn, bufio.NewReader(conn)
			}
			send := func(conn net.Conn, cmd string) {
				t.Helper()
				if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
					t.Fatal(err)
				}
			}
			readLine := func(r *bufio.Reader) string {
				t.Helper()
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatal(err)
				}
				return strings.TrimRight(line, "\n")
			}
			roundtrip := func(conn net.Conn, r *bufio.Reader, cmd string) string {
				t.Helper()
				send(conn, cmd)
				return readLine(r)
			}

			blocked, br := dial()
			other, or := dial()

			// Fast paths and errors first.
			if got := roundtrip(other, or, "SET live here"); got != "OK" {
				t.Fatalf("SET: %q", got)
			}
			if got := roundtrip(blocked, br, "BGET live 1000"); got != "VALUE here" {
				t.Fatalf("BGET existing: %q", got)
			}
			if got := roundtrip(blocked, br, "BGET missing 50"); got != "TIMEOUT" {
				t.Fatalf("BGET timeout: %q", got)
			}
			if got := roundtrip(blocked, br, "BGET missing nope"); got != "ERR timeoutMs must be a positive integer" {
				t.Fatalf("BGET bad timeout: %q", got)
			}
			if got := roundtrip(blocked, br, "BGET missing"); got != "ERR usage: BGET key timeoutMs" {
				t.Fatalf("BGET usage: %q", got)
			}
			if got := roundtrip(blocked, br, "WATCH live 50"); got != "TIMEOUT" {
				t.Fatalf("WATCH unchanged: %q", got)
			}
			// Absurd timeouts clamp instead of overflowing into an
			// instantly-expired context: the key exists, so the capped
			// BGET must answer with the value, not TIMEOUT.
			if got := roundtrip(blocked, br, "BGET live 99999999999999999"); got != "VALUE here" {
				t.Fatalf("BGET huge timeout: %q", got)
			}

			// BGET parks until another connection creates the key.
			send(blocked, "BGET newkey 10000")
			waitForServerPark(t, srv.store, 1)
			if got := roundtrip(other, or, "SET newkey born now"); got != "OK" {
				t.Fatalf("SET newkey: %q", got)
			}
			if got := readLine(br); got != "VALUE born now" {
				t.Fatalf("BGET woke with %q", got)
			}

			// WATCH wakes on a value change...
			parked := srv.store.Stats().Waits
			send(blocked, "WATCH live 10000")
			waitForServerPark(t, srv.store, int(parked)+1)
			if got := roundtrip(other, or, "SET live changed"); got != "OK" {
				t.Fatalf("SET live: %q", got)
			}
			if got := readLine(br); got != "VALUE changed" {
				t.Fatalf("WATCH woke with %q", got)
			}

			// ...and reports deletion as NIL.
			parked = srv.store.Stats().Waits
			send(blocked, "WATCH live 10000")
			waitForServerPark(t, srv.store, int(parked)+1)
			if got := roundtrip(other, or, "DEL live"); got != "VALUE 1" {
				t.Fatalf("DEL live: %q", got)
			}
			if got := readLine(br); got != "NIL" {
				t.Fatalf("WATCH after delete: %q", got)
			}

			// STATS surfaces the blocking counters.
			if got := roundtrip(other, or, "STATS"); !strings.Contains(got, "waits=") || !strings.Contains(got, "wakeups=") {
				t.Errorf("STATS missing blocking counters: %q", got)
			}
		})
	}
}

// TestServerStatsSubcommands drives the JSON observability subcommands
// over the wire on every engine: each reply must be one parseable JSON
// line whose content reflects the traffic just sent, and RESET must
// clear the histograms but not the cumulative counters.
func TestServerStatsSubcommands(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			srv := &server{store: kv.New(kv.WithShards(4), kv.WithEngine(e),
				kv.WithMetricsSampling(1))}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go srv.serve(l)

			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			roundtrip := func(cmd string) string {
				t.Helper()
				if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
					t.Fatal(err)
				}
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatal(err)
				}
				return strings.TrimRight(line, "\n")
			}

			if got := roundtrip("SET k some value"); got != "OK" {
				t.Fatalf("SET: %q", got)
			}
			if got := roundtrip("GET k"); got != "VALUE some value" {
				t.Fatalf("GET: %q", got)
			}
			if got := roundtrip("ADD ctr 2"); got != "VALUE 2" {
				t.Fatalf("ADD: %q", got)
			}

			var shards []kv.ShardStat
			if err := json.Unmarshal([]byte(roundtrip("STATS SHARDS")), &shards); err != nil {
				t.Fatalf("STATS SHARDS not JSON: %v", err)
			}
			if len(shards) != srv.store.NumShards() {
				t.Fatalf("STATS SHARDS: %d entries, want %d", len(shards), srv.store.NumShards())
			}
			var commits uint64
			for _, sh := range shards {
				commits += sh.Stm.Commits
			}
			if commits == 0 {
				t.Fatal("STATS SHARDS shows no commits after traffic")
			}

			var hist struct {
				Ops map[string]obs.Snapshot `json:"ops"`
				Stm kv.StmLatencies         `json:"stm"`
			}
			if err := json.Unmarshal([]byte(roundtrip("STATS HIST")), &hist); err != nil {
				t.Fatalf("STATS HIST not JSON: %v", err)
			}
			if hist.Ops["get"].Count == 0 || hist.Ops["set"].Count == 0 ||
				hist.Ops["counter_add"].Count == 0 {
				t.Fatalf("STATS HIST missing op data: %+v", hist.Ops)
			}
			if hist.Stm.CommitNs.Count == 0 {
				t.Fatal("STATS HIST missing STM commit latencies")
			}

			// HOT parses as an array even when nothing is contended.
			var hot []kv.HotKey
			if err := json.Unmarshal([]byte(roundtrip("STATS HOT")), &hot); err != nil {
				t.Fatalf("STATS HOT not JSON: %v", err)
			}

			if got := roundtrip("STATS RESET"); got != "OK" {
				t.Fatalf("STATS RESET: %q", got)
			}
			if err := json.Unmarshal([]byte(roundtrip("STATS HIST")), &hist); err != nil {
				t.Fatal(err)
			}
			if hist.Ops["get"].Count != 0 {
				t.Fatal("STATS RESET left op histograms")
			}
			if got := roundtrip("STATS"); !strings.Contains(got, " commits=") ||
				strings.Contains(got, " commits=0 ") {
				t.Errorf("cumulative STATS should survive RESET: %q", got)
			}
			if got := roundtrip("STATS BOGUS"); !strings.HasPrefix(got, "ERR unknown STATS sub") {
				t.Errorf("STATS BOGUS: %q", got)
			}
		})
	}
}

// TestServerSubscribe drives the changefeed over two loopback
// connections: one subscribes to a prefix, the other commits writes.
// The subscriber must see exactly the matching commits, as EVENT lines
// in commit order (one shard, so the per-shard sequence is total),
// carrying the right op names and payloads — and any input must end the
// stream by closing the connection.
func TestServerSubscribe(t *testing.T) {
	srv := &server{store: kv.New(kv.WithShards(1))}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	dial := func() (net.Conn, *bufio.Reader) {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn, bufio.NewReader(conn)
	}
	readLine := func(r *bufio.Reader) string {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\n")
	}

	subConn, sr := dial()
	other, or := dial()
	roundtrip := func(cmd string) string {
		t.Helper()
		if _, err := other.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		return readLine(or)
	}

	// The ack guarantees the subscription is registered before any of
	// the writes below commit.
	if _, err := subConn.Write([]byte("SUBSCRIBE user:\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(sr); got != "OK subscribed" {
		t.Fatalf("SUBSCRIBE ack: %q", got)
	}

	if got := roundtrip("SET user:1 alice smith"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	if got := roundtrip("SET noise:x y"); got != "OK" { // filtered, but takes seq 2
		t.Fatalf("SET noise: %q", got)
	}
	if got := roundtrip("ADD user:ctr 5"); got != "VALUE 5" {
		t.Fatalf("ADD: %q", got)
	}
	if got := roundtrip("DEL user:1"); got != "VALUE 1" {
		t.Fatalf("DEL: %q", got)
	}
	for i, want := range []string{
		"EVENT 1 set user:1 alice smith", // values keep their spaces
		"EVENT 3 cset user:ctr 5",        // seq 2 was the filtered write
		"EVENT 4 del user:1",
	} {
		if got := readLine(sr); got != want {
			t.Errorf("event %d: got %q, want %q", i, got, want)
		}
	}

	// Any input ends the stream: the server closes the connection.
	if _, err := subConn.Write([]byte("anything\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := sr.ReadString('\n'); err == nil {
		t.Fatal("stream did not end after client input")
	}

	// A malformed SUBSCRIBE replies with usage and closes the
	// connection — it already left command mode.
	bad, br := dial()
	if _, err := bad.Write([]byte("SUBSCRIBE too many args\n")); err != nil {
		t.Fatal(err)
	}
	if got := readLine(br); got != "ERR usage: SUBSCRIBE [prefix]" {
		t.Fatalf("SUBSCRIBE usage: %q", got)
	}
}

// TestServerStatsWAL pins the STATS WAL wire subcommand: one JSON line
// that parses as kv.WALStats, reporting "off" on an in-memory store and
// live append counters on a durable one.
func TestServerStatsWAL(t *testing.T) {
	drive := func(t *testing.T, srv *server) kv.WALStats {
		t.Helper()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go srv.serve(l)
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		r := bufio.NewReader(conn)
		roundtrip := func(cmd string) string {
			t.Helper()
			if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
				t.Fatal(err)
			}
			line, err := r.ReadString('\n')
			if err != nil {
				t.Fatal(err)
			}
			return strings.TrimRight(line, "\n")
		}
		if got := roundtrip("SET k some value"); got != "OK" {
			t.Fatalf("SET: %q", got)
		}
		if got := roundtrip("ADD ctr 2"); got != "VALUE 2" {
			t.Fatalf("ADD: %q", got)
		}
		var ws kv.WALStats
		if err := json.Unmarshal([]byte(roundtrip("STATS WAL")), &ws); err != nil {
			t.Fatalf("STATS WAL not JSON: %v", err)
		}
		return ws
	}

	t.Run("off", func(t *testing.T) {
		ws := drive(t, &server{store: kv.New(kv.WithShards(4))})
		if ws.Level != "off" || ws.Appends != 0 {
			t.Fatalf("in-memory STATS WAL: %+v", ws)
		}
	})
	t.Run("durable", func(t *testing.T) {
		store, err := kv.Open(kv.WithShards(4), kv.WithDurability(t.TempDir(), wal.Batch))
		if err != nil {
			t.Fatal(err)
		}
		defer store.Close()
		ws := drive(t, &server{store: store})
		if ws.Level != "batch" {
			t.Fatalf("level: %q, want batch", ws.Level)
		}
		if ws.Appends < 2 {
			t.Fatalf("appends: %d, want >= 2 after SET+ADD", ws.Appends)
		}
	})
}

// TestServerDurableRestart pins wire-level durability: values written
// over one server generation are served by the next one from the same
// data directory.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	roundtrip := func(t *testing.T, addr, cmd string) string {
		t.Helper()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := bufio.NewReader(conn).ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\n")
	}

	s1, err := kv.Open(kv.WithShards(4), kv.WithDurability(dir, wal.Fsync))
	if err != nil {
		t.Fatal(err)
	}
	l1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go (&server{store: s1}).serve(l1)
	if got := roundtrip(t, l1.Addr().String(), "SET greeting hello from gen one"); got != "OK" {
		t.Fatalf("SET: %q", got)
	}
	if got := roundtrip(t, l1.Addr().String(), "ADD hits 3"); got != "VALUE 3" {
		t.Fatalf("ADD: %q", got)
	}
	l1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := kv.Open(kv.WithShards(4), kv.WithDurability(dir, wal.Fsync))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	l2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	go (&server{store: s2}).serve(l2)
	if got := roundtrip(t, l2.Addr().String(), "GET greeting"); got != "VALUE hello from gen one" {
		t.Fatalf("recovered GET: %q", got)
	}
	if got := roundtrip(t, l2.Addr().String(), "ADD hits 1"); got != "VALUE 4" {
		t.Fatalf("recovered counter: %q", got)
	}
}

// TestServerSlowCommandLog pins the -slowtxn path: with a threshold of
// one nanosecond every command is "slow", and the structured log line
// carries the verb (never the value bytes) and the duration.
func TestServerSlowCommandLog(t *testing.T) {
	var buf strings.Builder
	var mu sync.Mutex
	prev := slog.Default()
	slog.SetDefault(slog.New(slog.NewTextHandler(lockedWriter{&mu, &buf}, nil)))
	defer slog.SetDefault(prev)

	srv := &server{store: kv.New(kv.WithShards(2)), slow: time.Nanosecond}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := conn.Write([]byte("SET secret do not log this\n")); err != nil {
		t.Fatal(err)
	}
	if line, err := r.ReadString('\n'); err != nil || strings.TrimSpace(line) != "OK" {
		t.Fatalf("SET: %q, %v", line, err)
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow command") || !strings.Contains(logged, "cmd=SET") {
		t.Fatalf("slow command not logged: %q", logged)
	}
	if strings.Contains(logged, "do not log this") {
		t.Fatalf("slow log leaked the value: %q", logged)
	}
}

// lockedWriter serializes the slog handler's writes with the test's
// reads (the handler runs on the connection goroutine).
type lockedWriter struct {
	mu *sync.Mutex
	w  *strings.Builder
}

func (lw lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// waitForServerPark blocks until the store has recorded at least n
// parks, so the waking command is only sent after the blocked one is
// actually asleep.
func waitForServerPark(t *testing.T, store *kv.Store, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for store.Stats().Waits < uint64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("server never parked: %+v", store.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineFlagRegistry pins the satellite change: the -engine flag is
// backed by the stm registry, not a private switch.
func TestEngineFlagRegistry(t *testing.T) {
	all, err := enginesForFlag("all")
	if err != nil || len(all) != len(stm.Engines()) {
		t.Fatalf("all: %v, %v", all, err)
	}
	one, err := enginesForFlag("tl2")
	if err != nil || len(one) != 1 || one[0] != stm.TL2 {
		t.Fatalf("tl2: %v, %v", one, err)
	}
	if _, err := enginesForFlag("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if help := engineFlagHelp(true); !strings.Contains(help, "tl2") || !strings.Contains(help, "all") {
		t.Errorf("flag help missing names: %q", help)
	}
}

// TestParseBlockTimeout pins the clamp: positive values pass through in
// milliseconds, oversized ones cap at the server's blocking ceiling (no
// int64 overflow into negative durations), garbage and non-positives
// reject, and a configured blockCap lowers the ceiling.
func TestParseBlockTimeout(t *testing.T) {
	srv := &server{}
	if d, ok := srv.parseBlockTimeout("250"); !ok || d != 250*time.Millisecond {
		t.Fatalf("250 -> %v, %v", d, ok)
	}
	if d, ok := srv.parseBlockTimeout("99999999999999999"); !ok || d != maxBlockTimeout {
		t.Fatalf("huge -> %v, %v (want clamp to %v)", d, ok, maxBlockTimeout)
	}
	for _, bad := range []string{"0", "-5", "nope", ""} {
		if _, ok := srv.parseBlockTimeout(bad); ok {
			t.Errorf("%q accepted", bad)
		}
	}
	capped := &server{limits: limits{blockCap: 5 * time.Millisecond}}
	if d, ok := capped.parseBlockTimeout("250"); !ok || d != 5*time.Millisecond {
		t.Fatalf("capped 250 -> %v, %v (want clamp to 5ms)", d, ok)
	}
}
