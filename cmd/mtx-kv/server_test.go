package main

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"modtx/internal/kv"
	"modtx/internal/stm"
)

// TestServerProtocol drives the TCP server end to end over a loopback
// connection, including arbitrary (space-containing) string values and
// the counter lane.
func TestServerProtocol(t *testing.T) {
	srv := &server{store: kv.New(kv.WithShards(4), kv.WithEngine(stm.Lazy))}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	readLine := func() string {
		t.Helper()
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		return strings.TrimRight(line, "\n")
	}
	roundtrip := func(cmd string) string {
		t.Helper()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		return readLine()
	}

	for _, tc := range []struct{ cmd, want string }{
		{"PING", "PONG"},
		{"GET a", "NIL"},
		{"SET a some value with spaces", "OK"},
		{"GET a", "VALUE some value with spaces"},
		{"FGET a", "VALUE some value with spaces"},
		{"SET a short", "OK"},
		{"GET a", "VALUE short"},
		{"SET   sp\t padded  value", "OK"}, // token runs must not shift the key
		{"GET sp", "VALUE padded  value"},
		{"ADD ctr 3", "VALUE 3"},
		{"ADD ctr 5", "VALUE 8"},
		{"GET ctr", "VALUE 8"}, // counters read back as decimal
		{"FGET ctr", "VALUE 8"},
		{"ADD a 1", "ERR " + `kv: key "a": ` + kv.ErrWrongType.Error()},
		{"MSET x 1 y two z 3", "OK"},
		{"TXN ADD c1 -1 c2 1", "VALUES -1 1"},
		{"SET a", "ERR usage: SET key value"},
		{"TXN MUL x 2", "ERR unknown TXN op MUL (want ADD)"},
		{"NOPE", "ERR unknown command NOPE"},
	} {
		if got := roundtrip(tc.cmd); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.cmd, got, tc.want)
		}
	}

	// MGET replies with a count header and one line per key.
	if got := roundtrip("MGET x y z missing"); got != "VALUES 4" {
		t.Fatalf("MGET header: got %q", got)
	}
	for i, want := range []string{"VALUE 1", "VALUE two", "VALUE 3", "NIL"} {
		if got := readLine(); got != want {
			t.Errorf("MGET line %d: got %q, want %q", i, got, want)
		}
	}

	if got := roundtrip("STATS"); !strings.HasPrefix(got, "STATS kv: shards=4") {
		t.Errorf("STATS: got %q", got)
	}
	if got := roundtrip("QUIT"); got != "BYE" {
		t.Errorf("QUIT: got %q", got)
	}
}
