package main

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"modtx/internal/kv"
	"modtx/internal/stm"
)

// TestServerProtocol drives the TCP server end to end over a loopback
// connection.
func TestServerProtocol(t *testing.T) {
	srv := &server{store: kv.New(kv.Options{Shards: 4, Engine: stm.Lazy})}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	roundtrip := func(cmd string) string {
		t.Helper()
		if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
			t.Fatal(err)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
		return strings.TrimSpace(line)
	}

	for _, tc := range []struct{ cmd, want string }{
		{"PING", "PONG"},
		{"GET a", "NIL"},
		{"SET a 5", "OK"},
		{"GET a", "VALUE 5"},
		{"FGET a", "VALUE 5"},
		{"ADD a 3", "VALUE 8"},
		{"MSET x 1 y 2 z 3", "OK"},
		{"MGET x y z missing", "VALUES 1 2 3 nil"},
		{"TXN ADD x -1 y 1", "VALUES 0 3"},
		{"MGET x y", "VALUES 0 3"},
		{"SET a", "ERR usage: SET key value"},
		{"TXN MUL x 2", "ERR unknown TXN op MUL (want ADD)"},
		{"NOPE", "ERR unknown command NOPE"},
	} {
		if got := roundtrip(tc.cmd); got != tc.want {
			t.Errorf("%s: got %q, want %q", tc.cmd, got, tc.want)
		}
	}
	if got := roundtrip("STATS"); !strings.HasPrefix(got, "STATS kv: shards=4") {
		t.Errorf("STATS: got %q", got)
	}
	if got := roundtrip("QUIT"); got != "BYE" {
		t.Errorf("QUIT: got %q", got)
	}
}
