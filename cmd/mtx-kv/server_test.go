package main

import (
	"bufio"
	"net"
	"strings"
	"testing"

	"modtx/internal/kv"
	"modtx/internal/stm"
)

// TestServerProtocol drives the TCP server end to end over a loopback
// connection on every registered engine, including arbitrary
// (space-containing) string values, the counter lane, and deletion.
func TestServerProtocol(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			srv := &server{store: kv.New(kv.WithShards(4), kv.WithEngine(e))}
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go srv.serve(l)

			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			readLine := func() string {
				t.Helper()
				line, err := r.ReadString('\n')
				if err != nil {
					t.Fatal(err)
				}
				return strings.TrimRight(line, "\n")
			}
			roundtrip := func(cmd string) string {
				t.Helper()
				if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
					t.Fatal(err)
				}
				return readLine()
			}

			for _, tc := range []struct{ cmd, want string }{
				{"PING", "PONG"},
				{"GET a", "NIL"},
				{"SET a some value with spaces", "OK"},
				{"GET a", "VALUE some value with spaces"},
				{"FGET a", "VALUE some value with spaces"},
				{"SET a short", "OK"},
				{"GET a", "VALUE short"},
				{"SET   sp\t padded  value", "OK"}, // token runs must not shift the key
				{"GET sp", "VALUE padded  value"},
				{"ADD ctr 3", "VALUE 3"},
				{"ADD ctr 5", "VALUE 8"},
				{"GET ctr", "VALUE 8"}, // counters read back as decimal
				{"FGET ctr", "VALUE 8"},
				{"ADD a 1", "ERR " + `kv: key "a": ` + kv.ErrWrongType.Error()},
				{"MSET x 1 y two z 3", "OK"},
				{"TXN ADD c1 -1 c2 1", "VALUES -1 1"},
				{"SET a", "ERR usage: SET key value"},
				{"TXN MUL x 2", "ERR unknown TXN op MUL (want ADD or DEL)"},
				{"NOPE", "ERR unknown command NOPE"},
				// Deletion round trips: DEL counts removals, the key is gone
				// on every path, and the freed key can change kind.
				{"DEL a missing", "VALUE 1"},
				{"GET a", "NIL"},
				{"FGET a", "NIL"},
				{"DEL a", "VALUE 0"},
				{"DEL ctr", "VALUE 1"},
				{"SET ctr was a counter", "OK"},
				{"GET ctr", "VALUE was a counter"},
				{"TXN DEL x y nope", "VALUES 1 1 0"},
				{"GET x", "NIL"},
				{"GET z", "VALUE 3"},
				{"DEL", "ERR usage: DEL key..."},
				{"TXN DEL", "ERR usage: TXN DEL key..."},
			} {
				if got := roundtrip(tc.cmd); got != tc.want {
					t.Errorf("%s: got %q, want %q", tc.cmd, got, tc.want)
				}
			}

			// MGET replies with a count header and one line per key; x was
			// deleted above and must be NIL.
			if got := roundtrip("MGET x y z missing"); got != "VALUES 4" {
				t.Fatalf("MGET header: got %q", got)
			}
			for i, want := range []string{"NIL", "NIL", "VALUE 3", "NIL"} {
				if got := readLine(); got != want {
					t.Errorf("MGET line %d: got %q, want %q", i, got, want)
				}
			}

			if got := roundtrip("STATS"); !strings.HasPrefix(got, "STATS kv: shards=4") {
				t.Errorf("STATS: got %q", got)
			}
			if got := roundtrip("QUIT"); got != "BYE" {
				t.Errorf("QUIT: got %q", got)
			}
		})
	}
}

// TestEngineFlagRegistry pins the satellite change: the -engine flag is
// backed by the stm registry, not a private switch.
func TestEngineFlagRegistry(t *testing.T) {
	all, err := enginesForFlag("all")
	if err != nil || len(all) != len(stm.Engines()) {
		t.Fatalf("all: %v, %v", all, err)
	}
	one, err := enginesForFlag("tl2")
	if err != nil || len(one) != 1 || one[0] != stm.TL2 {
		t.Fatalf("tl2: %v, %v", one, err)
	}
	if _, err := enginesForFlag("bogus"); err == nil {
		t.Fatal("bogus engine accepted")
	}
	if help := engineFlagHelp(true); !strings.Contains(help, "tl2") || !strings.Contains(help, "all") {
		t.Errorf("flag help missing names: %q", help)
	}
}
