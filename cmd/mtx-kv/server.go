package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"strconv"
	"strings"
	"unicode"

	"modtx/internal/kv"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7700", "listen address")
	shards := fs.Int("shards", 64, "shard count (rounded up to a power of two)")
	engineName := fs.String("engine", "lazy", engineFlagHelp(false))
	if err := fs.Parse(args); err != nil {
		return err
	}
	engines, err := enginesForFlag(*engineName)
	if err != nil {
		return err
	}
	if len(engines) != 1 {
		return fmt.Errorf("serve needs a single engine, not %q", *engineName)
	}
	srv := &server{store: kv.New(kv.WithShards(*shards), kv.WithEngine(engines[0]))}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("mtx-kv: serving %s engine, %d shards on %s\n",
		engines[0], srv.store.NumShards(), l.Addr())
	return srv.serve(l)
}

// server wraps a kv.Store with the line protocol. One goroutine per
// connection; the store itself is the only shared state.
type server struct {
	store *kv.Store
}

func (s *server) serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handleConn(conn)
	}
}

func (s *server) handleConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	w := bufio.NewWriter(conn)
	for sc.Scan() {
		// Trim only the CR of CRLF clients: SET values must keep their
		// trailing bytes, and Fields-based dispatch tolerates leading
		// whitespace on its own.
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		resp, quit := s.exec(line)
		w.WriteString(resp)
		w.WriteByte('\n')
		w.Flush()
		if quit {
			return
		}
	}
}

// exec runs one protocol command and returns the response (which may span
// several lines, e.g. MGET). Values are arbitrary byte strings without
// newlines: SET takes everything after the key as the value, so spaces
// round-trip; the token-based multi-key commands (MSET) carry values
// without spaces.
func (s *server) exec(line string) (resp string, quit bool) {
	f := strings.Fields(line)
	switch strings.ToUpper(f[0]) {
	case "PING":
		return "PONG", false

	case "GET", "FGET":
		if len(f) != 2 {
			return "ERR usage: GET key", false
		}
		var v []byte
		var ok bool
		if strings.ToUpper(f[0]) == "FGET" {
			v, ok = s.store.FastGet(f[1])
		} else {
			var err error
			v, ok, err = s.store.Get(f[1])
			if err != nil {
				return "ERR " + err.Error(), false
			}
		}
		if !ok {
			return "NIL", false
		}
		return "VALUE " + string(v), false

	case "SET":
		// SET key value — the value is everything after the key (leading
		// whitespace trimmed, trailing bytes preserved), so it may contain
		// spaces but not newlines. Parse by peeling the Fields tokens off
		// the raw line with the same whitespace definition Fields uses,
		// so no run of separators can shift the key or bleed into the
		// value.
		if len(f) < 3 {
			return "ERR usage: SET key value", false
		}
		rest := strings.TrimLeftFunc(line, unicode.IsSpace)            // at the command
		rest = strings.TrimLeftFunc(rest[len(f[0]):], unicode.IsSpace) // at the key
		val := strings.TrimLeftFunc(rest[len(f[1]):], unicode.IsSpace) // the value
		if err := s.store.Set(f[1], []byte(val)); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false

	case "DEL":
		if len(f) < 2 {
			return "ERR usage: DEL key...", false
		}
		n := 0
		for _, k := range f[1:] {
			ok, err := s.store.Delete(k)
			if err != nil {
				return "ERR " + err.Error(), false
			}
			if ok {
				n++
			}
		}
		return "VALUE " + strconv.Itoa(n), false

	case "ADD":
		if len(f) != 3 {
			return "ERR usage: ADD key delta", false
		}
		d, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return "ERR delta: " + err.Error(), false
		}
		v, err := s.store.CounterAdd(f[1], d)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		return "VALUE " + strconv.FormatInt(v, 10), false

	case "MGET":
		if len(f) < 2 {
			return "ERR usage: MGET key...", false
		}
		keys := f[1:]
		got, err := s.store.MGet(keys...)
		if err != nil {
			return "ERR " + err.Error(), false
		}
		// Multi-line reply: a count header, then one VALUE/NIL line per
		// key — unambiguous even when values contain spaces.
		var b strings.Builder
		fmt.Fprintf(&b, "VALUES %d", len(keys))
		for _, k := range keys {
			if v, ok := got[k]; ok {
				b.WriteString("\nVALUE " + string(v))
			} else {
				b.WriteString("\nNIL")
			}
		}
		return b.String(), false

	case "MSET":
		if len(f) < 3 || len(f)%2 != 1 {
			return "ERR usage: MSET key value [key value ...] (token values)", false
		}
		vals := make(map[string][]byte, (len(f)-1)/2)
		for i := 1; i < len(f); i += 2 {
			vals[f[i]] = []byte(f[i+1])
		}
		if err := s.store.MSet(vals); err != nil {
			return "ERR " + err.Error(), false
		}
		return "OK", false

	case "TXN":
		if len(f) < 2 {
			return "ERR usage: TXN {ADD key delta [key delta ...] | DEL key...}", false
		}
		switch strings.ToUpper(f[1]) {
		case "ADD":
			rest := f[2:]
			if len(rest) == 0 || len(rest)%2 != 0 {
				return "ERR usage: TXN ADD key delta [key delta ...]", false
			}
			keys := make([]string, 0, len(rest)/2)
			deltas := make([]int64, 0, len(rest)/2)
			for i := 0; i < len(rest); i += 2 {
				d, err := strconv.ParseInt(rest[i+1], 10, 64)
				if err != nil {
					return "ERR delta for " + rest[i] + ": " + err.Error(), false
				}
				keys = append(keys, rest[i])
				deltas = append(deltas, d)
			}
			news := make([]int64, len(keys))
			err := s.store.Update(keys, func(t *kv.Txn) error {
				for i, k := range keys {
					news[i] = t.Add(k, deltas[i])
				}
				return nil
			})
			if err != nil {
				return "ERR " + err.Error(), false
			}
			parts := make([]string, 0, len(news)+1)
			parts = append(parts, "VALUES")
			for _, v := range news {
				parts = append(parts, strconv.FormatInt(v, 10))
			}
			return strings.Join(parts, " "), false

		case "DEL":
			keys := f[2:]
			if len(keys) == 0 {
				return "ERR usage: TXN DEL key...", false
			}
			removed := make([]bool, len(keys))
			err := s.store.Update(keys, func(t *kv.Txn) error {
				for i, k := range keys {
					removed[i] = t.Delete(k)
				}
				return nil
			})
			if err != nil {
				return "ERR " + err.Error(), false
			}
			parts := make([]string, 0, len(keys)+1)
			parts = append(parts, "VALUES")
			for _, ok := range removed {
				if ok {
					parts = append(parts, "1")
				} else {
					parts = append(parts, "0")
				}
			}
			return strings.Join(parts, " "), false

		default:
			return "ERR unknown TXN op " + f[1] + " (want ADD or DEL)", false
		}

	case "STATS":
		return "STATS " + s.store.Stats().String(), false

	case "QUIT":
		return "BYE", true
	}
	return "ERR unknown command " + f[0], false
}
