package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
	"unicode"

	"modtx/internal/cluster"
	"modtx/internal/kv"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7700", "listen address")
	shards := fs.Int("shards", 64, "shard count (rounded up to a power of two)")
	engineName := fs.String("engine", "lazy", engineFlagHelp(false))
	dataDir := fs.String("data", "",
		"durability directory: recover state from it on boot and log every commit; empty = in-memory only")
	durLevel := fs.String("durability", "fsync",
		"durability level with -data: fsync (group commit), batch (interval fsync), none (OS page cache)")
	replAddr := fs.String("replicate-addr", "",
		"listen address for WAL shipping to replicas (requires -data); empty disables")
	degraded := fs.String("degraded-mode", "fail",
		"policy after a latched WAL failure with -data: fail (writes keep surfacing the error), "+
			"readonly (writes rejected, reads served), shed-durability (keep serving, count unlogged commits)")
	adminAddr := fs.String("admin", "",
		"admin plane listen address (/metrics, /debug/pprof, /debug/vars, /healthz); empty disables")
	slowTxn := fs.Duration("slowtxn", 0,
		"log commands slower than this threshold via slog (0 disables)")
	lim := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engines, err := enginesForFlag(*engineName)
	if err != nil {
		return err
	}
	if len(engines) != 1 {
		return fmt.Errorf("serve needs a single engine, not %q", *engineName)
	}
	mode, err := kv.ParseDegradedMode(*degraded)
	if err != nil {
		return err
	}
	opts := []kv.Option{kv.WithShards(*shards), kv.WithEngine(engines[0]), kv.WithDegradedMode(mode)}
	if *dataDir != "" {
		level, err := wal.ParseLevel(*durLevel)
		if err != nil {
			return err
		}
		opts = append(opts, kv.WithDurability(*dataDir, level))
	}
	store, err := kv.Open(opts...)
	if err != nil {
		return err
	}
	srv := &server{store: store, slow: *slowTxn, limits: lim()}
	if *dataDir != "" {
		ri := store.WALStats().Recover
		fmt.Printf("mtx-kv: recovered %s: %d snapshot records + %d log records over %d shards, max seq %d\n",
			*dataDir, ri.SnapshotRecords, ri.Records, ri.Shards, ri.MaxSeq)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		store.Close()
		return err
	}
	if *replAddr != "" {
		st, err := cluster.NewStreamer(store)
		if err != nil {
			store.Close()
			return fmt.Errorf("-replicate-addr: %w (use -data)", err)
		}
		rl, err := net.Listen("tcp", *replAddr)
		if err != nil {
			store.Close()
			return fmt.Errorf("replication listen: %w", err)
		}
		srv.streamer = st
		fmt.Printf("mtx-kv: shipping WAL to replicas on %s\n", rl.Addr())
		go func() {
			if err := st.Serve(rl); err != nil {
				slog.Error("replication streamer exited", "err", err)
			}
		}()
	}
	if err := startAdmin(srv, *adminAddr); err != nil {
		store.Close()
		return err
	}
	fmt.Printf("mtx-kv: serving %s engine, %d shards on %s, durability %s\n",
		engines[0], srv.store.NumShards(), l.Addr(), store.WALStats().Level)
	// SIGINT/SIGTERM trigger the graceful path in serveUntil: stop
	// accepting, drain in-flight connections, then Close — which
	// flushes and fsyncs a durable store's logs, so the next boot
	// replays no tail. A SIGKILL skips all of this by design — recovery
	// repairs whatever the crash left.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	return serveUntil(srv, l, sig)
}

// startAdmin mounts the admin plane when addr is non-empty.
func startAdmin(srv *server, addr string) error {
	if addr == "" {
		return nil
	}
	al, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("admin listen: %w", err)
	}
	fmt.Printf("mtx-kv: admin plane on http://%s\n", al.Addr())
	go func() {
		if err := http.Serve(al, adminMuxFor(srv)); err != nil {
			slog.Error("admin plane exited", "err", err)
		}
	}()
	return nil
}

// drainTimeout bounds the graceful-shutdown drain: connections still
// busy after this long are force-closed so shutdown cannot hang on a
// parked subscriber or a dead client.
const drainTimeout = 5 * time.Second

// serveUntil accepts connections until stop delivers a signal, then
// shuts down gracefully: stop accepting, drain in-flight connections
// (force-closing stragglers after drainTimeout), stop the replication
// streamer, and flush + close the store's WAL. Factored out of
// runServe so tests can drive the whole shutdown path in-process.
func serveUntil(srv *server, l net.Listener, stop <-chan os.Signal) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-stop:
			l.Close()
		case <-done:
		}
	}()
	err := srv.serve(l)
	if errors.Is(err, net.ErrClosed) {
		err = nil
	}
	wait := srv.drainWait
	if wait == 0 {
		wait = drainTimeout
	}
	srv.drain(wait)
	if srv.streamer != nil {
		srv.streamer.Close()
	}
	if cerr := srv.store.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// server wraps a kv.Store with the line protocol. One goroutine per
// connection; the store itself is the only shared state.
type server struct {
	store     *kv.Store
	slow      time.Duration // log commands at least this slow; 0 disables
	readonly  bool          // replica role: reject mutating commands
	drainWait time.Duration // shutdown drain bound; 0 = drainTimeout
	limits                  // overload protection; see limits.go

	// Replication role, at most one non-nil: streamer on a primary
	// shipping its WAL, client+replica on a follower applying it.
	// STATS REPL and the admin plane report whichever is set.
	streamer *cluster.Streamer
	repl     *cluster.Client
	replica  *kv.Replica

	// Connection tracking for the graceful drain.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup
}

func (s *server) serve(l net.Listener) error {
	s.initLimits()
	// Accept backpressure: with -maxconns, a full house stops the accept
	// loop instead of spawning handlers — excess dials wait in the
	// kernel's listen backlog, costing the server nothing.
	var sem chan struct{}
	if s.maxConns > 0 {
		sem = make(chan struct{}, s.maxConns)
	}
	for {
		if sem != nil {
			sem <- struct{}{}
		}
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		s.track(conn)
		go func() {
			defer func() {
				s.untrack(conn)
				if sem != nil {
					<-sem
				}
			}()
			s.handleConn(conn)
		}()
	}
}

func (s *server) track(c net.Conn) {
	s.connMu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	s.connMu.Unlock()
	s.connWG.Add(1)
}

func (s *server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	s.connWG.Done()
}

// drain waits for in-flight connection handlers to finish, up to
// timeout; stragglers (idle keep-alives, parked subscribers) have
// their connections force-closed, which unwinds their handlers.
func (s *server) drain(timeout time.Duration) {
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		<-done
	}
}

func (s *server) handleConn(conn net.Conn) {
	defer conn.Close()
	// A panic in one handler must cost one connection, not the process:
	// every other client keeps its session and the store its state.
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			slog.Error("connection handler panic", "panic", p,
				"remote", conn.RemoteAddr().String())
		}
	}()
	maxReq := s.reqCap()
	sc := bufio.NewScanner(conn)
	initial := 64 * 1024
	if maxReq < initial {
		initial = maxReq
	}
	sc.Buffer(make([]byte, initial), maxReq)
	w := bufio.NewWriter(conn)
	// One reply buffer per connection, reused across commands: exec
	// appends the (possibly multi-line) response into it, so the
	// steady-state reply path performs no per-command allocation.
	reply := make([]byte, 0, 256)
	for {
		if s.idle > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idle))
		}
		if !sc.Scan() {
			if errors.Is(sc.Err(), bufio.ErrTooLong) {
				// The scanner cannot resynchronize to the next line once
				// its buffer overflows, so answer and hang up.
				w.WriteString("ERR request too large\n")
				w.Flush()
			}
			return
		}
		// Trim only the CR of CRLF clients: SET values must keep their
		// trailing bytes, and Fields-based dispatch tolerates leading
		// whitespace on its own.
		line := strings.TrimRight(sc.Text(), "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		if f := strings.Fields(line); strings.EqualFold(f[0], "SUBSCRIBE") {
			// SUBSCRIBE flips the connection into streaming mode for the
			// rest of its life; it never returns to command dispatch. A
			// quiet subscriber is normal, so the idle deadline comes off.
			conn.SetReadDeadline(time.Time{})
			s.handleSubscribe(conn, sc, w, f)
			return
		}
		var start time.Time
		if s.slow > 0 {
			start = time.Now()
		}
		var quit bool
		reply, quit = s.execAdmitted(reply[:0], line)
		if s.slow > 0 {
			if elapsed := time.Since(start); elapsed >= s.slow {
				// Log only the verb: values are user data and BGET/WATCH
				// park by design, which is exactly what this surfaces.
				verb := strings.Fields(line)[0]
				slog.Warn("slow command", "cmd", strings.ToUpper(verb),
					"elapsed", elapsed, "remote", conn.RemoteAddr().String())
			}
		}
		reply = append(reply, '\n')
		if s.idle > 0 {
			// The write deadline bounds how long a stalled client (full
			// socket buffer, dead peer) can pin this goroutine.
			conn.SetWriteDeadline(time.Now().Add(s.idle))
		}
		w.Write(reply)
		if w.Flush() != nil {
			return
		}
		if cap(reply) > 64*1024 {
			// Don't let one huge MGET pin its high-water mark for the
			// rest of a long-lived connection.
			reply = make([]byte, 0, 256)
		}
		if quit {
			return
		}
	}
}

// handleSubscribe serves SUBSCRIBE [prefix]: acknowledge with
// "OK subscribed", then stream one "EVENT seq op key [value]" line per
// committed write under the prefix, in per-shard commit order, until
// the client sends any line or disconnects. seq is the per-shard commit
// sequence; op is set, cset or del; set carries the value bytes (no
// newlines, spaces allowed), cset the counter's new absolute value.
//
// Delivery is buffered and non-blocking on the commit path: a client
// that reads slower than the store commits loses events, and each loss
// is reported in-stream as a cumulative "DROPPED n" line, so consumers
// can tell a gap from a quiet store.
func (s *server) handleSubscribe(conn net.Conn, sc *bufio.Scanner, w *bufio.Writer, f []string) {
	if len(f) > 2 {
		w.WriteString("ERR usage: SUBSCRIBE [prefix]\n")
		w.Flush()
		return
	}
	prefix := ""
	if len(f) == 2 {
		prefix = f[1]
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub := s.store.Subscribe(ctx, prefix)
	defer sub.Close()
	// The registration must be visible before the ack: a client that
	// reads "OK" and then triggers a write on another connection is
	// guaranteed to see its event.
	w.WriteString("OK subscribed\n")
	if w.Flush() != nil {
		return
	}
	// Any further input — or EOF when the client goes away — ends the
	// stream; parking on the scanner costs nothing while the client is
	// quietly reading.
	go func() {
		defer cancel()
		sc.Scan()
	}()
	reply := make([]byte, 0, 256)
	var reported uint64
	for ev := range sub.Events() {
		reply = appendEvent(reply[:0], ev)
		reply = append(reply, '\n')
		if d := sub.Dropped(); d > reported {
			reported = d
			reply = append(reply, "DROPPED "...)
			reply = strconv.AppendUint(reply, d, 10)
			reply = append(reply, '\n')
		}
		if s.idle > 0 {
			// Subscribers may read slowly but not stall forever: a full
			// socket buffer past the deadline ends the stream.
			conn.SetWriteDeadline(time.Now().Add(s.idle))
		}
		if _, err := w.Write(reply); err != nil {
			return
		}
		if w.Flush() != nil {
			return
		}
	}
}

// appendEvent formats one changefeed event as a protocol line (without
// the trailing newline).
func appendEvent(b []byte, ev kv.Event) []byte {
	b = append(b, "EVENT "...)
	b = strconv.AppendUint(b, ev.Seq, 10)
	b = append(b, ' ')
	b = append(b, ev.Kind.String()...)
	b = append(b, ' ')
	b = append(b, ev.Key...)
	switch ev.Kind {
	case wal.KindSet:
		b = append(b, ' ')
		b = append(b, ev.Val...)
	case wal.KindCounterAdd, wal.KindCounterSet:
		b = append(b, ' ')
		b = strconv.AppendInt(b, ev.N, 10)
	}
	return b
}

// maxBlockTimeout caps BGET/WATCH waits: it bounds how long a dead
// connection can pin a parked goroutine (the wait context is not tied
// to the connection's lifetime) and keeps the millisecond→Duration
// conversion far from int64 overflow, which would turn a huge requested
// timeout into an instantly-expired context.
const maxBlockTimeout = 10 * time.Minute

// parseBlockTimeout parses a BGET/WATCH timeoutMs operand: a positive
// integer, clamped to the server's block cap (maxBlockTimeout unless a
// test or fuzz harness shrinks it).
func (s *server) parseBlockTimeout(arg string) (time.Duration, bool) {
	ms, err := strconv.ParseInt(arg, 10, 64)
	if err != nil || ms <= 0 {
		return 0, false
	}
	cap := s.blockTimeoutCap()
	if ms > int64(cap/time.Millisecond) {
		return cap, true
	}
	return time.Duration(ms) * time.Millisecond, true
}

// appendErr appends "ERR <context><err>" to the reply buffer.
func appendErr(reply []byte, context string, err error) []byte {
	reply = append(reply, "ERR "...)
	reply = append(reply, context...)
	return append(reply, err.Error()...)
}

// exec runs one protocol command, appending the response (which may span
// several lines, e.g. MGET) to reply and returning the extended buffer.
// Values are arbitrary byte strings without newlines: SET takes
// everything after the key as the value, so spaces round-trip; the
// token-based multi-key commands (MSET) carry values without spaces.
func (s *server) exec(reply []byte, line string) (resp []byte, quit bool) {
	f := strings.Fields(line)
	verb := strings.ToUpper(f[0])
	if s.readonly {
		// A replica serves reads only: writing through its store would
		// fork it from the primary's history (replication applies the
		// primary's records by absolute sequence, not by merging).
		switch verb {
		case "SET", "DEL", "ADD", "MSET", "TXN":
			return append(reply, "ERR read-only replica"...), false
		}
	}
	switch verb {
	case "PING":
		return append(reply, "PONG"...), false

	case "GET", "FGET":
		if len(f) != 2 {
			return append(reply, "ERR usage: GET key"...), false
		}
		var v []byte
		var ok bool
		if strings.ToUpper(f[0]) == "FGET" {
			v, ok = s.store.FastGet(f[1])
		} else {
			var err error
			v, ok, err = s.store.Get(f[1])
			if err != nil {
				return appendErr(reply, "", err), false
			}
		}
		if !ok {
			return append(reply, "NIL"...), false
		}
		reply = append(reply, "VALUE "...)
		return append(reply, v...), false

	case "BGET":
		// BGET key timeoutMs — blocking GET: parks server-side (on this
		// connection only) until the key exists, waking on the commit
		// that creates it; TIMEOUT after the deadline. The wait is
		// event-driven — a parked BGET burns no server CPU.
		if len(f) != 3 {
			return append(reply, "ERR usage: BGET key timeoutMs"...), false
		}
		d, ok := s.parseBlockTimeout(f[2])
		if !ok {
			return append(reply, "ERR timeoutMs must be a positive integer"...), false
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		v, err := s.store.WaitGet(ctx, f[1])
		cancel()
		switch {
		case errors.Is(err, stm.ErrCanceled):
			return append(reply, "TIMEOUT"...), false
		case err != nil:
			return appendErr(reply, "", err), false
		}
		reply = append(reply, "VALUE "...)
		return append(reply, v...), false

	case "WATCH":
		// WATCH key [timeoutMs] — block until the key's value (or
		// existence) changes from its state at command time, then reply
		// with the new state: VALUE v, NIL (deleted), or TIMEOUT. The
		// default timeout bounds how long a dead connection can keep its
		// goroutine parked.
		if len(f) != 2 && len(f) != 3 {
			return append(reply, "ERR usage: WATCH key [timeoutMs]"...), false
		}
		d := time.Minute
		if cap := s.blockTimeoutCap(); d > cap {
			d = cap
		}
		if len(f) == 3 {
			var okArg bool
			d, okArg = s.parseBlockTimeout(f[2])
			if !okArg {
				return append(reply, "ERR timeoutMs must be a positive integer"...), false
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), d)
		v, ok, err := s.store.Watch(ctx, f[1])
		cancel()
		switch {
		case errors.Is(err, stm.ErrCanceled):
			return append(reply, "TIMEOUT"...), false
		case err != nil:
			return appendErr(reply, "", err), false
		case !ok:
			return append(reply, "NIL"...), false
		}
		reply = append(reply, "VALUE "...)
		return append(reply, v...), false

	case "SET":
		// SET key value — the value is everything after the key (leading
		// whitespace trimmed, trailing bytes preserved), so it may contain
		// spaces but not newlines. Parse by peeling the Fields tokens off
		// the raw line with the same whitespace definition Fields uses,
		// so no run of separators can shift the key or bleed into the
		// value.
		if len(f) < 3 {
			return append(reply, "ERR usage: SET key value"...), false
		}
		rest := strings.TrimLeftFunc(line, unicode.IsSpace)            // at the command
		rest = strings.TrimLeftFunc(rest[len(f[0]):], unicode.IsSpace) // at the key
		val := strings.TrimLeftFunc(rest[len(f[1]):], unicode.IsSpace) // the value
		if err := s.store.Set(f[1], []byte(val)); err != nil {
			return appendErr(reply, "", err), false
		}
		return append(reply, "OK"...), false

	case "DEL":
		if len(f) < 2 {
			return append(reply, "ERR usage: DEL key..."...), false
		}
		n := 0
		for _, k := range f[1:] {
			ok, err := s.store.Delete(k)
			if err != nil {
				return appendErr(reply, "", err), false
			}
			if ok {
				n++
			}
		}
		reply = append(reply, "VALUE "...)
		return strconv.AppendInt(reply, int64(n), 10), false

	case "ADD":
		if len(f) != 3 {
			return append(reply, "ERR usage: ADD key delta"...), false
		}
		d, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return appendErr(reply, "delta: ", err), false
		}
		v, err := s.store.CounterAdd(f[1], d)
		if err != nil {
			return appendErr(reply, "", err), false
		}
		reply = append(reply, "VALUE "...)
		return strconv.AppendInt(reply, v, 10), false

	case "MGET":
		if len(f) < 2 {
			return append(reply, "ERR usage: MGET key..."...), false
		}
		keys := f[1:]
		got, err := s.store.MGet(keys...)
		if err != nil {
			return appendErr(reply, "", err), false
		}
		// Multi-line reply: a count header, then one VALUE/NIL line per
		// key — unambiguous even when values contain spaces.
		reply = append(reply, "VALUES "...)
		reply = strconv.AppendInt(reply, int64(len(keys)), 10)
		for _, k := range keys {
			if v, ok := got[k]; ok {
				reply = append(reply, "\nVALUE "...)
				reply = append(reply, v...)
			} else {
				reply = append(reply, "\nNIL"...)
			}
		}
		return reply, false

	case "MSET":
		if len(f) < 3 || len(f)%2 != 1 {
			return append(reply, "ERR usage: MSET key value [key value ...] (token values)"...), false
		}
		vals := make(map[string][]byte, (len(f)-1)/2)
		for i := 1; i < len(f); i += 2 {
			vals[f[i]] = []byte(f[i+1])
		}
		if err := s.store.MSet(vals); err != nil {
			return appendErr(reply, "", err), false
		}
		return append(reply, "OK"...), false

	case "TXN":
		if len(f) < 2 {
			return append(reply, "ERR usage: TXN {ADD key delta [key delta ...] | DEL key...}"...), false
		}
		switch strings.ToUpper(f[1]) {
		case "ADD":
			rest := f[2:]
			if len(rest) == 0 || len(rest)%2 != 0 {
				return append(reply, "ERR usage: TXN ADD key delta [key delta ...]"...), false
			}
			keys := make([]string, 0, len(rest)/2)
			deltas := make([]int64, 0, len(rest)/2)
			for i := 0; i < len(rest); i += 2 {
				d, err := strconv.ParseInt(rest[i+1], 10, 64)
				if err != nil {
					return appendErr(reply, "delta for "+rest[i]+": ", err), false
				}
				keys = append(keys, rest[i])
				deltas = append(deltas, d)
			}
			news := make([]int64, len(keys))
			err := s.store.Update(keys, func(t *kv.Txn) error {
				for i, k := range keys {
					news[i] = t.Add(k, deltas[i])
				}
				return nil
			})
			if err != nil {
				return appendErr(reply, "", err), false
			}
			reply = append(reply, "VALUES"...)
			for _, v := range news {
				reply = append(reply, ' ')
				reply = strconv.AppendInt(reply, v, 10)
			}
			return reply, false

		case "DEL":
			keys := f[2:]
			if len(keys) == 0 {
				return append(reply, "ERR usage: TXN DEL key..."...), false
			}
			removed := make([]bool, len(keys))
			err := s.store.Update(keys, func(t *kv.Txn) error {
				for i, k := range keys {
					removed[i] = t.Delete(k)
				}
				return nil
			})
			if err != nil {
				return appendErr(reply, "", err), false
			}
			reply = append(reply, "VALUES"...)
			for _, ok := range removed {
				if ok {
					reply = append(reply, " 1"...)
				} else {
					reply = append(reply, " 0"...)
				}
			}
			return reply, false

		default:
			return append(reply, "ERR unknown TXN op "+f[1]+" (want ADD or DEL)"...), false
		}

	case "STATS":
		// STATS            -> the human-readable aggregate counters
		// STATS SHARDS     -> per-shard stats, one JSON line
		// STATS HIST       -> op + STM latency histograms, one JSON line
		// STATS HOT        -> hottest keys by attributed conflicts, JSON
		// STATS WAL        -> durability + changefeed stats, one JSON line
		// STATS REPL       -> replication role + progress, one JSON line
		// STATS RESET      -> zero histograms and contention tables
		if len(f) == 1 {
			return append(reply, "STATS "+s.store.Stats().String()...), false
		}
		switch strings.ToUpper(f[1]) {
		case "SHARDS":
			return appendStatsJSON(reply, s.store.ShardStats()), false
		case "HIST":
			return appendStatsJSON(reply, histReportFor(s.store)), false
		case "HOT":
			return appendStatsJSON(reply, hotKeysFor(s.store)), false
		case "WAL":
			return appendStatsJSON(reply, s.store.WALStats()), false
		case "REPL":
			return appendStatsJSON(reply, s.replStats()), false
		case "RESET":
			s.store.ResetMetrics()
			return append(reply, "OK"...), false
		default:
			return append(reply, "ERR unknown STATS sub "+f[1]+
				" (want SHARDS, HIST, HOT, WAL, REPL or RESET)"...), false
		}

	case "QUIT":
		return append(reply, "BYE"...), true
	}
	return append(reply, "ERR unknown command "+f[0]...), false
}
