// The replica role: mtx-kv replica dials a primary's -replicate-addr,
// sizes a local in-memory store from the handshake, and applies the
// shipped WAL while serving the read side of the line protocol
// (GET/FGET/MGET/BGET/WATCH/SUBSCRIBE/STATS). Mutating commands are
// rejected with "ERR read-only replica": replication applies the
// primary's records by absolute sequence, so a local write would fork
// the replica from the primary's history.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"modtx/internal/cluster"
	"modtx/internal/kv"
)

func runReplica(args []string) error {
	fs := flag.NewFlagSet("replica", flag.ExitOnError)
	primary := fs.String("primary", "",
		"primary's replication address (its serve -replicate-addr); required")
	addr := fs.String("addr", ":7701", "listen address for read traffic")
	engineName := fs.String("engine", "lazy", engineFlagHelp(false))
	adminAddr := fs.String("admin", "",
		"admin plane listen address (/metrics, /debug/pprof, /debug/vars, /healthz); empty disables")
	slowTxn := fs.Duration("slowtxn", 0,
		"log commands slower than this threshold via slog (0 disables)")
	lim := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *primary == "" {
		return errors.New("-primary is required")
	}
	engines, err := enginesForFlag(*engineName)
	if err != nil {
		return err
	}
	if len(engines) != 1 {
		return fmt.Errorf("replica needs a single engine, not %q", *engineName)
	}

	// Size the store from the primary: the shard count must match, since
	// records route by the shared key hash.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hello, err := cluster.Discover(ctx, *primary)
	if err != nil {
		return fmt.Errorf("discover %s: %w", *primary, err)
	}
	r, err := kv.NewReplica(kv.WithShards(len(hello.Seqs)), kv.WithEngine(engines[0]))
	if err != nil {
		return err
	}
	client := &cluster.Client{Addr: *primary, Replica: r, Logf: func(format string, args ...any) {
		slog.Info(fmt.Sprintf(format, args...))
	}}
	srv := &server{store: r.Store(), slow: *slowTxn, readonly: true, repl: client, replica: r, limits: lim()}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		r.Store().Close()
		return err
	}
	if err := startAdmin(srv, *adminAddr); err != nil {
		r.Store().Close()
		return err
	}
	go func() {
		if err := client.Run(ctx); err != nil && ctx.Err() == nil {
			slog.Error("replication stream exited", "err", err)
		}
	}()
	fmt.Printf("mtx-kv: replica of %s (%d shards, %s engine) serving reads on %s\n",
		*primary, r.Shards(), engines[0], l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	err = serveUntil(srv, l, sig)
	cancel() // stop the stream after the readers are drained
	return err
}

// replStats builds the STATS REPL document for whichever replication
// role this process plays.
func (s *server) replStats() any {
	switch {
	case s.streamer != nil:
		return s.streamer.Stats()
	case s.replica != nil:
		// One flat JSON object: the connection state and the apply
		// progress (the embedded structs have disjoint field names).
		return struct {
			cluster.ClientStats
			kv.ReplicaStats
		}{s.repl.Stats(), s.replica.Stats()}
	default:
		return map[string]string{"role": "none"}
	}
}

// renderReplMetrics appends the replication gauges to the Prometheus
// exposition for whichever role the process plays; no-op without one.
func renderReplMetrics(b []byte, srv *server) []byte {
	if srv.streamer != nil {
		st := srv.streamer.Stats()
		b = append(b, "# HELP mtxkv_repl_sessions Connected replica sessions.\n"...)
		b = append(b, "# TYPE mtxkv_repl_sessions gauge\nmtxkv_repl_sessions "...)
		b = strconv.AppendInt(b, st.Connected, 10)
		b = append(b, '\n')
		for _, c := range []struct {
			name, help string
			v          uint64
		}{
			{"mtxkv_repl_sessions_total", "Replica sessions ever served.", st.Served},
			{"mtxkv_repl_records_total", "Record frames shipped to replicas.", st.Records},
			{"mtxkv_repl_snapshots_total", "Snapshot transfers shipped to replicas.", st.Snapshots},
		} {
			b = append(b, "# HELP "+c.name+" "+c.help+"\n# TYPE "+c.name+" counter\n"+c.name+" "...)
			b = strconv.AppendUint(b, c.v, 10)
			b = append(b, '\n')
		}
	}
	if srv.replica != nil {
		rs := srv.replica.Stats()
		b = append(b, "# HELP mtxkv_replica_watermark Applied primary commit sequence per shard.\n"...)
		b = append(b, "# TYPE mtxkv_replica_watermark gauge\n"...)
		for i, w := range rs.Watermarks {
			b = append(b, `mtxkv_replica_watermark{shard="`...)
			b = strconv.AppendInt(b, int64(i), 10)
			b = append(b, `"} `...)
			b = strconv.AppendUint(b, w, 10)
			b = append(b, '\n')
		}
		b = append(b, "# HELP mtxkv_replica_applied_total Shard records applied.\n"...)
		b = append(b, "# TYPE mtxkv_replica_applied_total counter\nmtxkv_replica_applied_total "...)
		b = strconv.AppendUint(b, rs.Applied, 10)
		b = append(b, "\n# HELP mtxkv_replica_xapplied_total Cross-shard transactions applied atomically.\n"...)
		b = append(b, "# TYPE mtxkv_replica_xapplied_total counter\nmtxkv_replica_xapplied_total "...)
		b = strconv.AppendUint(b, rs.XApplied, 10)
		b = append(b, "\n# HELP mtxkv_replica_pending Records held back waiting on markers or siblings.\n"...)
		b = append(b, "# TYPE mtxkv_replica_pending gauge\nmtxkv_replica_pending "...)
		b = strconv.AppendInt(b, int64(rs.Pending), 10)
		b = append(b, "\n# HELP mtxkv_replica_ready Caught up to the handshake-time primary positions (1 = ready).\n"...)
		b = append(b, "# TYPE mtxkv_replica_ready gauge\nmtxkv_replica_ready "...)
		if rs.Ready {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
		b = append(b, '\n')
	}
	return b
}
