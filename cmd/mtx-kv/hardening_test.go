package main

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modtx/internal/fault"
	"modtx/internal/kv"
	"modtx/internal/wal"
)

// startHardened runs a server with the given limits on a loopback
// listener and returns a dialer for it.
func startHardened(t *testing.T, srv *server) func() (net.Conn, *bufio.Reader) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.serve(l)
	return func() (net.Conn, *bufio.Reader) {
		t.Helper()
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn, bufio.NewReader(conn)
	}
}

func send(t *testing.T, conn net.Conn, cmd string) {
	t.Helper()
	if _, err := conn.Write([]byte(cmd + "\n")); err != nil {
		t.Fatal(err)
	}
}

func recvLine(t *testing.T, r *bufio.Reader) string {
	t.Helper()
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(line, "\n")
}

// TestOverloadShed pins the admission valve: with every in-flight token
// held by a parked blocking command, store commands answer
// "ERR overloaded" (and are counted), exempt verbs still work, and
// normal service resumes once the tokens free up.
func TestOverloadShed(t *testing.T) {
	srv := &server{
		store:  kv.New(kv.WithShards(4), kv.WithMetrics(false)),
		limits: limits{maxInflight: 1},
	}
	dial := startHardened(t, srv)

	parked, pr := dial()
	probe, qr := dial()
	// The parked BGET holds the single token until its 2s timeout.
	send(t, parked, "BGET nosuchkey 2000")

	// Poll until the shed path engages: the BGET may not have been
	// admitted the instant the probe arrives.
	deadline := time.Now().Add(time.Second)
	for {
		send(t, probe, "GET x")
		if resp := recvLine(t, qr); resp == "ERR overloaded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe was never shed while the token was held")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.shed.Load(); got == 0 {
		t.Fatal("shed counter not incremented")
	}
	// Exempt verbs bypass admission: the operator can still reach the
	// server while it sheds.
	send(t, probe, "PING")
	if resp := recvLine(t, qr); resp != "PONG" {
		t.Fatalf("PING while overloaded: %q", resp)
	}
	send(t, probe, "STATS")
	if resp := recvLine(t, qr); !strings.HasPrefix(resp, "STATS") {
		t.Fatalf("STATS while overloaded: %q", resp)
	}

	// Recovery: the BGET times out, releasing its token, and the next
	// store command is served normally.
	if resp := recvLine(t, pr); resp != "TIMEOUT" {
		t.Fatalf("parked BGET: %q", resp)
	}
	deadline = time.Now().Add(2 * time.Second)
	for {
		send(t, probe, "GET x")
		if resp := recvLine(t, qr); resp == "NIL" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never recovered after the token freed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMaxConnsBackpressure pins the accept valve: with -maxconns 1 a
// second connection is not served until the first hangs up — it waits
// in the listen backlog rather than costing a handler.
func TestMaxConnsBackpressure(t *testing.T) {
	srv := &server{
		store:  kv.New(kv.WithShards(4), kv.WithMetrics(false)),
		limits: limits{maxConns: 1},
	}
	dial := startHardened(t, srv)

	first, fr := dial()
	send(t, first, "PING")
	if resp := recvLine(t, fr); resp != "PONG" {
		t.Fatalf("first conn: %q", resp)
	}

	// The second dial succeeds (kernel backlog) but no handler reads it.
	second, sr := dial()
	send(t, second, "PING")
	second.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
	if _, err := sr.ReadString('\n'); err == nil {
		t.Fatal("second conn was served while the house was full")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("want read timeout, got %v", err)
	}

	// Freeing the slot lets the accept loop pick it up and answer the
	// PING that has been sitting in the socket buffer.
	first.Close()
	second.SetReadDeadline(time.Now().Add(2 * time.Second))
	line, err := sr.ReadString('\n')
	if err != nil || strings.TrimRight(line, "\n") != "PONG" {
		t.Fatalf("second conn after slot freed: %q, %v", line, err)
	}
}

// TestMaxRequestSize pins the request cap: an oversized line answers
// "ERR request too large" and disconnects (the scanner cannot find the
// next line boundary once its buffer overflows), while lines under the
// cap work as usual.
func TestMaxRequestSize(t *testing.T) {
	srv := &server{
		store:  kv.New(kv.WithShards(4), kv.WithMetrics(false)),
		limits: limits{maxReq: 128},
	}
	dial := startHardened(t, srv)

	conn, r := dial()
	send(t, conn, "SET small value")
	if resp := recvLine(t, r); resp != "OK" {
		t.Fatalf("under-cap SET: %q", resp)
	}
	send(t, conn, "SET big "+strings.Repeat("x", 4096))
	if resp := recvLine(t, r); resp != "ERR request too large" {
		t.Fatalf("oversized SET: %q", resp)
	}
	// EOF or RST both mean the server hung up (RST when its receive
	// buffer still held unread request bytes at close).
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection not closed after oversized request")
	}
}

// TestIdleTimeout pins the idle valve: a connection that sends nothing
// for the timeout is dropped; one that keeps talking is not.
func TestIdleTimeout(t *testing.T) {
	srv := &server{
		store:  kv.New(kv.WithShards(4), kv.WithMetrics(false)),
		limits: limits{idle: 100 * time.Millisecond},
	}
	dial := startHardened(t, srv)

	conn, r := dial()
	send(t, conn, "PING")
	if resp := recvLine(t, r); resp != "PONG" {
		t.Fatalf("PING: %q", resp)
	}
	// Go quiet: the server's read deadline fires and it hangs up.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := r.ReadString('\n'); err != io.EOF {
		t.Fatalf("idle connection not dropped: %v", err)
	}
}

// TestPanicRecovery pins per-connection containment: a handler panic
// (provoked here by a nil store) costs exactly that connection — it is
// counted, the process survives, and new connections are served.
func TestPanicRecovery(t *testing.T) {
	srv := &server{} // nil store: any store command panics in exec
	dial := startHardened(t, srv)

	bad, br := dial()
	send(t, bad, "GET boom")
	if _, err := br.ReadString('\n'); err != io.EOF {
		t.Fatalf("panicked connection not closed: %v", err)
	}
	if got := srv.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// The accept loop survived: a fresh connection gets full service
	// from the verbs that don't touch the store.
	good, gr := dial()
	send(t, good, "PING")
	if resp := recvLine(t, gr); resp != "PONG" {
		t.Fatalf("PING after panic: %q", resp)
	}
}

// TestAdminDegraded pins the operator surface of degraded mode: once a
// WAL fault latches, /healthz flips to 503 naming the cause and
// /metrics exposes the degraded gauge, the shed-write counter, and the
// admission-shed counter.
func TestAdminDegraded(t *testing.T) {
	dfs := fault.NewDiskFS(nil, fault.DiskPlan{})
	store, err := kv.Open(
		kv.WithDurability(t.TempDir(), wal.Fsync),
		kv.WithShards(4),
		kv.WithMetrics(false),
		kv.WithWALFS(dfs),
		kv.WithDegradedMode(kv.DegradeShed),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	srv := &server{store: store}
	srv.shed.Add(3) // as if admission had shed three commands
	ts := httptest.NewServer(adminMuxFor(srv))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthy /healthz: %d %q", code, body)
	}

	dfs.FailNextWrite(fault.ErrIO)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := store.Set("probe", []byte("x")); err != nil {
			t.Fatalf("shed-mode write failed: %v", err)
		}
		if deg, _ := store.Degraded(); deg {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("store never transitioned to degraded")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := get("/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("degraded /healthz: %d %q", code, body)
	}
	_, metrics := get("/metrics")
	for _, want := range []string{
		"mtxkv_degraded 1",
		`mtxkv_degraded_mode{mode="shed-durability"} 1`,
		"mtxkv_shed_total 3",
		"mtxkv_wal_shed_writes_total ",
		"mtxkv_conn_panics_total 0",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
