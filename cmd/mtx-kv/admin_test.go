package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"modtx/internal/kv"
	"modtx/internal/obs"
	"modtx/internal/stm"
	"modtx/internal/wal"
)

// adminStore builds a store with every call sampled and a little traffic
// on every instrumented path, so the admin endpoints have real data to
// render.
func adminStore(t *testing.T, e stm.Engine) *kv.Store {
	t.Helper()
	s := kv.New(kv.WithShards(4), kv.WithEngine(e), kv.WithMetricsSampling(1))
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get("k"); err != nil || !ok {
		t.Fatal("get failed")
	}
	if _, err := s.CounterAdd("ctr", 7); err != nil {
		t.Fatal(err)
	}
	// Synthetic contention so the hot-key gauge renders at least one row.
	s.ShardSTM(s.ShardOf("ctr")).Metrics().Contention.Record(1)
	return s
}

// promLine matches one Prometheus text-format sample:
// name{labels} value — where value is an integer here (all our samples
// are counts, sums or gauges of integers).
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?\d+$`)

// TestAdminPlane drives the HTTP admin mux over loopback on every
// engine: /healthz liveness, /metrics syntax + content, /debug/vars
// JSON, and the pprof index.
func TestAdminPlane(t *testing.T) {
	for _, e := range stm.Engines() {
		t.Run(e.String(), func(t *testing.T) {
			ts := httptest.NewServer(adminMux(adminStore(t, e)))
			defer ts.Close()

			get := func(path string) (int, string) {
				t.Helper()
				resp, err := http.Get(ts.URL + path)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				body, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				return resp.StatusCode, string(body)
			}

			if code, body := get("/healthz"); code != 200 || body != "ok\n" {
				t.Fatalf("/healthz: %d %q", code, body)
			}

			code, body := get("/metrics")
			if code != 200 || body == "" {
				t.Fatalf("/metrics: %d, empty=%v", code, body == "")
			}
			for _, want := range []string{
				`mtxkv_op_latency_ns_bucket{op="get",le="+Inf"}`,
				`mtxkv_op_latency_ns_count{op="set"}`,
				`mtxkv_stm_latency_ns_bucket{kind="commit"`,
				"mtxkv_stm_txn_attempts_count ",
				"mtxkv_commits_total ",
				"mtxkv_shards 4",
				"mtxkv_hot_key_conflicts{key=",
			} {
				if !strings.Contains(body, want) {
					t.Errorf("/metrics missing %q", want)
				}
			}
			// Every non-comment line must be well-formed exposition text.
			for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
				if strings.HasPrefix(line, "#") {
					continue
				}
				if !promLine.MatchString(line) {
					t.Errorf("malformed metrics line %q", line)
				}
			}
			// Histogram buckets must be cumulative: each series'
			// per-bucket counts never decrease and end at _count.
			checkCumulative(t, body, `mtxkv_op_latency_ns`, `op="get"`)

			code, body = get("/debug/vars")
			if code != 200 {
				t.Fatalf("/debug/vars: %d", code)
			}
			var vars map[string]json.RawMessage
			if err := json.Unmarshal([]byte(body), &vars); err != nil {
				t.Fatalf("/debug/vars not JSON: %v", err)
			}
			var tree struct {
				Stats     kv.Stats `json:"stats"`
				Latencies struct {
					Ops map[string]obs.Snapshot `json:"ops"`
				} `json:"latencies"`
				HotKeys []kv.HotKey `json:"hot_keys"`
			}
			if err := json.Unmarshal(vars["mtxkv"], &tree); err != nil {
				t.Fatalf("mtxkv expvar tree: %v", err)
			}
			if tree.Stats.Commits == 0 || tree.Latencies.Ops["get"].Count == 0 {
				t.Fatalf("expvar tree missing data: %+v", tree)
			}
			if len(tree.HotKeys) == 0 {
				t.Fatal("expvar tree missing hot keys")
			}

			if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
				t.Fatalf("/debug/pprof/: %d", code)
			}
			if code, _ := get("/debug/pprof/cmdline"); code != 200 {
				t.Fatalf("/debug/pprof/cmdline: %d", code)
			}
		})
	}
}

// checkCumulative parses one histogram series out of the exposition text
// and asserts the le-bucket values are nondecreasing and agree with the
// series' _count sample.
func checkCumulative(t *testing.T, body, name, label string) {
	t.Helper()
	var prev uint64
	var inf uint64
	seen := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, name+"_bucket{"+label+",le=") {
			continue
		}
		seen = true
		val := line[strings.LastIndexByte(line, ' ')+1:]
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("bad bucket value in %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q (prev %d)", line, prev)
		}
		prev = n
		if strings.Contains(line, `le="+Inf"`) {
			inf = n
		}
	}
	if !seen {
		t.Fatalf("series %s{%s} not found", name, label)
	}
	countLine := name + "_count{" + label + "} "
	i := strings.Index(body, countLine)
	if i < 0 {
		t.Fatalf("missing %s", countLine)
	}
	rest := body[i+len(countLine):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	count, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if inf != count {
		t.Fatalf("+Inf bucket %d != _count %d", inf, count)
	}
}

// TestAdminPlaneWAL pins the durability observability surface: a
// durable store's /metrics carries the WAL counters, level gauge and
// latency histograms, and the expvar tree gains a "wal" subtree — all
// well-formed exposition text.
func TestAdminPlaneWAL(t *testing.T) {
	store, err := kv.Open(kv.WithShards(4), kv.WithMetricsSampling(1),
		kv.WithDurability(t.TempDir(), wal.Fsync))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	if err := store.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := store.CounterAdd("ctr", 7); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(adminMux(store))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`mtxkv_wal_level{level="fsync"} 1`,
		"mtxkv_wal_fsyncs_total ",
		"mtxkv_wal_bytes_total ",
		"mtxkv_changefeed_dropped_total 0",
		"mtxkv_changefeed_subscribers 0",
		`mtxkv_wal_append_ns_bucket{le="+Inf"}`,
		"mtxkv_wal_fsync_ns_count ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if metricValue(t, text, "mtxkv_wal_appends_total") < 2 {
		t.Errorf("mtxkv_wal_appends_total below traffic:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !promLine.MatchString(line) {
			t.Errorf("malformed metrics line %q", line)
		}
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Mtxkv struct {
			Wal kv.WALStats `json:"wal"`
		} `json:"mtxkv"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Mtxkv.Wal.Level != "fsync" || vars.Mtxkv.Wal.Appends < 2 {
		t.Fatalf("expvar wal subtree: %+v", vars.Mtxkv.Wal)
	}
}

// metricValue extracts one unlabeled counter/gauge sample from
// exposition text.
func metricValue(t *testing.T, body, name string) uint64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestExpvarRepublish pins the multi-store behavior: building a second
// admin mux must not panic (expvar.Publish is once-only) and must
// retarget the published tree at the new store.
func TestExpvarRepublish(t *testing.T) {
	s1 := adminStore(t, stm.Lazy)
	_ = adminMux(s1)
	s2 := kv.New(kv.WithShards(2), kv.WithEngine(stm.Lazy))
	_ = adminMux(s2) // must not panic
	ts := httptest.NewServer(adminMux(s2))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars struct {
		Mtxkv struct {
			Stats kv.Stats `json:"stats"`
		} `json:"mtxkv"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars.Mtxkv.Stats.Shards != 2 {
		t.Fatalf("expvar tree still points at the old store: %+v", vars.Mtxkv.Stats)
	}
}

// TestRenderMetricsDisabledStore pins the degenerate rendering: a store
// with metrics off still exposes the cumulative counters and gauges and
// stays syntactically valid (empty histograms, no hot keys).
func TestRenderMetricsDisabledStore(t *testing.T) {
	s := kv.New(kv.WithShards(2), kv.WithMetrics(false))
	if err := s.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	body := string(renderMetrics(s))
	if !strings.Contains(body, "mtxkv_commits_total ") {
		t.Fatal("counters must render even with metrics off")
	}
	if strings.Contains(body, "mtxkv_hot_key_conflicts{") {
		t.Fatal("disabled store must render no hot keys")
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !strings.HasPrefix(line, "#") && !promLine.MatchString(line) {
			t.Errorf("malformed line %q", line)
		}
	}
}
