package main

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"modtx/internal/kv"
)

// FuzzServerCommand throws arbitrary bytes at the connection handler
// and pins the protocol's crash-safety contract: the handler never
// panics (the per-connection recover would count one), never wedges —
// blocking verbs are capped by blockCap, so any input terminates
// promptly — and everything it writes is newline-terminated, so a
// client can always resynchronize on line boundaries.
//
// The input may contain newlines (several commands), NULs, invalid
// UTF-8, oversized operands — the handler's only legal reactions are a
// reply per command or a clean disconnect.
func FuzzServerCommand(f *testing.F) {
	for _, seed := range []string{
		"PING",
		"GET a",
		"FGET a",
		"SET a some value",
		"SET a",
		"ADD ctr 3",
		"ADD ctr notanumber",
		"DEL a b c",
		"DEL",
		"MGET a b c",
		"MSET x 1 y 2",
		"TXN ADD c1 -1 c2 1",
		"TXN MUL x 2",
		"BGET k 10000",
		"BGET k -5",
		"WATCH k",
		"WATCH k 99999999999999999999",
		"SUBSCRIBE",
		"SUBSCRIBE pre fix extra",
		"STATS",
		"STATS HIST",
		"QUIT",
		"NOPE nope",
		"  \t  ",
		"PING\nGET a\nQUIT",
		"SET \x00 \xff\xfe",
		"get lowercase",
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := &server{
			store: kv.New(kv.WithShards(2), kv.WithMetrics(false)),
			// Cap blocking verbs so a fuzzed BGET/WATCH cannot park the
			// iteration; cap request size so giant inputs exercise the
			// too-large path instead of allocating without bound.
			limits: limits{blockCap: 5 * time.Millisecond, maxReq: 1 << 16, maxInflight: 2},
		}
		srv.initLimits()
		client, server := net.Pipe()
		handlerDone := make(chan struct{})
		go func() {
			defer close(handlerDone)
			srv.handleConn(server)
		}()
		// Drain replies concurrently so the handler's writes never block
		// on the unbuffered pipe.
		var out bytes.Buffer
		drainDone := make(chan struct{})
		go func() {
			defer close(drainDone)
			io.Copy(&out, client)
		}()

		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		client.Write(append(data, '\n'))
		client.Close() // the handler sees EOF (or is already gone)

		select {
		case <-handlerDone:
		case <-time.After(5 * time.Second):
			t.Fatalf("handler wedged on %q", data)
		}
		<-drainDone
		if n := srv.panics.Load(); n != 0 {
			t.Fatalf("handler panicked on %q", data)
		}
		if b := out.Bytes(); len(b) > 0 && b[len(b)-1] != '\n' {
			t.Fatalf("reply not newline-terminated on %q: %q", data, b)
		}
	})
}
