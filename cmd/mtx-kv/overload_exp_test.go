package main

import (
	"bufio"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modtx/internal/kv"
)

// TestOverloadExperiment is a measurement run, not an assertion suite:
// it saturates a -maxinflight 8 server with 64 clients of parked
// blocking reads and logs served/shed counts and exempt-verb latency.
func TestOverloadExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement run")
	}
	srv := &server{
		store:  kv.New(kv.WithShards(16), kv.WithMetrics(false)),
		limits: limits{maxInflight: 8},
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.serve(l)

	const clients = 64
	var served, shedded atomic.Uint64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			r := bufio.NewReader(conn)
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn.Write([]byte("BGET nokey 20\n"))
				line, err := r.ReadString('\n')
				if err != nil {
					return
				}
				switch strings.TrimRight(line, "\n") {
				case "TIMEOUT":
					served.Add(1)
				case "ERR overloaded":
					shedded.Add(1)
				}
			}
		}()
	}

	// Exempt-verb latency during the storm, from its own connection.
	pconn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer pconn.Close()
	pr := bufio.NewReader(pconn)
	time.Sleep(500 * time.Millisecond) // let the storm build
	var pings int
	var worst time.Duration
	pingDeadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(pingDeadline) {
		start := time.Now()
		pconn.Write([]byte("PING\n"))
		if line, err := pr.ReadString('\n'); err != nil || line != "PONG\n" {
			t.Fatalf("PING during storm: %q %v", line, err)
		}
		if d := time.Since(start); d > worst {
			worst = d
		}
		pings++
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Recovery: with the storm gone, a store command is served at once.
	start := time.Now()
	pconn.Write([]byte("SET x back\n"))
	if line, _ := pr.ReadString('\n'); line != "OK\n" {
		t.Fatalf("SET after storm: %q", line)
	}
	t.Logf("overload: clients=%d maxinflight=%d served=%d shed=%d (%.1f%% shed) srv.shed=%d",
		clients, srv.maxInflight, served.Load(), shedded.Load(),
		100*float64(shedded.Load())/float64(served.Load()+shedded.Load()), srv.shed.Load())
	t.Logf("exempt PING during storm: %d pings, worst %v; first SET after storm: %v",
		pings, worst, time.Since(start))
}
