// Command mtx-opt runs the §5 compiler-optimization soundness suite
// (experiments O1–O5 of DESIGN.md): each transformation is applied to its
// witness program and validated by exhaustive behaviour-inclusion
// checking, then compared against the paper's verdict.
package main

import (
	"fmt"
	"os"

	"modtx/internal/opt"
)

func main() {
	reps, err := opt.StandardReports()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtx-opt:", err)
		os.Exit(1)
	}
	bad := 0
	for _, r := range reps {
		status := "as expected"
		if r.Sound != r.Expected {
			status = "MISMATCH"
			bad++
		}
		fmt.Printf("%s  [%s]\n", r.Report, status)
	}
	fmt.Printf("\n%d transformations checked, %d mismatches\n", len(reps), bad)
	if bad > 0 {
		os.Exit(1)
	}
}
