// Command mtx-explore enumerates the consistent executions of a litmus
// program under a chosen model and prints the reachable outcomes.
//
// Usage:
//
//	mtx-explore [-model programmer|implementation|tso|strongest]
//	            [-execs N] [file.lit]
//
// With no file argument the program is read from stdin. The -execs flag
// additionally pretty-prints up to N consistent executions.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"modtx/internal/core"
	"modtx/internal/event"
	"modtx/internal/exec"
	"modtx/internal/prog"
)

func main() {
	model := flag.String("model", "programmer", "model config: programmer, implementation, tso, strongest")
	execs := flag.Int("execs", 0, "pretty-print up to N consistent executions")
	flag.Parse()

	cfg, err := configByName(*model)
	if err != nil {
		fatal(err)
	}

	var src []byte
	if flag.NArg() > 0 {
		src, err = os.ReadFile(flag.Arg(0))
	} else {
		src, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fatal(err)
	}
	p, err := prog.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("program %s under the %s model\n\n", p.Name, cfg.Name)
	printed := 0
	summary, err := exec.Enumerate(p, exec.Options{
		Config: cfg,
		Visit: func(x *event.Execution, o *exec.Outcome) bool {
			if printed < *execs {
				printed++
				fmt.Printf("--- execution %d ---\n%s\n", printed, event.Pretty(x))
			}
			return true
		},
	})
	if err != nil {
		fatal(err)
	}

	keys := make([]string, 0, len(summary.Outcomes))
	for k := range summary.Outcomes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("reachable outcomes (%d):\n", len(keys))
	for _, k := range keys {
		fmt.Println("  " + k)
	}
	fmt.Printf("\n%d consistent executions, %d candidates checked, value universe %v\n",
		summary.Consistent, summary.Candidates, summary.Universe)
}

func configByName(name string) (core.Config, error) {
	switch name {
	case "programmer":
		return core.Programmer, nil
	case "implementation":
		return core.Implementation, nil
	case "tso":
		return core.TSO, nil
	case "strongest":
		return core.Strongest, nil
	}
	return core.Config{}, fmt.Errorf("unknown model %q", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mtx-explore:", err)
	os.Exit(1)
}
