// Command mtx-litmus runs the full paper catalog — every figure and litmus
// program with its expected verdict — and prints one row per check. This
// regenerates the paper's tables and figures (experiments E01–E33 of
// DESIGN.md / EXPERIMENTS.md).
//
// Usage:
//
//	mtx-litmus [-q]
//
// Exit status 1 if any check disagrees with the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"modtx/internal/litmus"
)

func main() {
	quiet := flag.Bool("q", false, "print only failures and the summary")
	flag.Parse()

	results := litmus.RunAll(true)
	pass, fail := 0, 0
	for _, r := range results {
		if r.Pass() {
			pass++
			if !*quiet {
				fmt.Println(r)
			}
		} else {
			fail++
			fmt.Println(r)
		}
	}
	fmt.Printf("\n%d checks: %d pass, %d fail\n", pass+fail, pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}
