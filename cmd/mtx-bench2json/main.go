// Command mtx-bench2json converts `go test -bench -benchmem` output into
// a machine-readable JSON document, so benchmark runs can be checked in
// (the repo's perf trajectory, e.g. BENCH_PR4.json) and uploaded as CI
// artifacts without parsing text tables downstream.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | mtx-bench2json [-out file.json] [-note "..."]
//	go test -run=NONE -bench=. -benchmem -cpu 1,4,16 . | mtx-bench2json -sweep [-gate KVReadHeavy] [-gate-ratio 1.0]
//
// Input may concatenate several packages' bench sections; the goos /
// goarch / cpu / pkg headers are tracked per section and attached to
// each benchmark row. Lines that are not benchmark results are ignored,
// so piping the whole `go test` output works.
//
// With -sweep, the input is a GOMAXPROCS sweep (`go test -cpu 1,4,16`):
// rows are grouped by their -P name suffix (no suffix = 1 proc) and the
// output is a JSON array with one document per GOMAXPROCS value, each
// stamped with that proc count — the scaling-curve shape BENCH_PR10.json
// records. -gate names a top-level benchmark to check scaling on: for
// every sub-benchmark, the highest-proc row's throughput must be at
// least -gate-ratio times its lowest-proc throughput, or the exit status
// is 1. The default ratio 1.0 demands genuine scaling (never slower
// with more procs); CI runners with fewer cores than the sweep's top
// proc count pass a documented allowance for oversubscription instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// benchRow is one parsed benchmark result. Ns/B/allocs are per
// operation, exactly as `go test -benchmem` reports them.
type benchRow struct {
	Name        string  `json:"name"`          // full name minus Benchmark prefix and -P suffix, e.g. KVGet/lazy
	Bench       string  `json:"bench"`         // top-level benchmark, e.g. KVGet
	Sub         string  `json:"sub,omitempty"` // sub-benchmark path, e.g. lazy
	Pkg         string  `json:"pkg,omitempty"`
	Procs       int     `json:"procs,omitempty"` // the -P suffix (GOMAXPROCS at run time)
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type document struct {
	Note string `json:"note,omitempty"`

	// Provenance stamp: which code and environment produced the numbers,
	// so trajectory points (BENCH_PR*.json) are comparable run to run.
	// Commit is taken from -commit or `git rev-parse HEAD`; GoVersion and
	// GoMaxProcs describe the toolchain/host of this conversion, which in
	// CI is the same job that ran the benchmarks.
	Commit     string `json:"commit,omitempty"`
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Goos       string     `json:"goos,omitempty"`
	Goarch     string     `json:"goarch,omitempty"`
	CPU        string     `json:"cpu,omitempty"`
	Benchmarks []benchRow `json:"benchmarks"`
}

// gitCommit resolves HEAD's hash, or "" when not in a git checkout.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	note := flag.String("note", "", "free-form note recorded in the document (e.g. the PR or commit)")
	commit := flag.String("commit", "", "git commit to stamp the document with (default: git rev-parse HEAD)")
	sweep := flag.Bool("sweep", false, "treat input as a -cpu sweep: emit one document per GOMAXPROCS value (JSON array)")
	gate := flag.String("gate", "", "with -sweep: top-level benchmark whose sub-benchmarks must scale (e.g. KVReadHeavy)")
	gateRatio := flag.Float64("gate-ratio", 1.0, "with -gate: minimum highest-proc/lowest-proc throughput ratio")
	flag.Parse()

	doc := document{
		Note:       *note,
		Commit:     *commit,
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	if doc.Commit == "" {
		doc.Commit = gitCommit()
	}
	var pkg string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		row, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		row.Pkg = pkg
		doc.Benchmarks = append(doc.Benchmarks, row)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "mtx-bench2json: read:", err)
		os.Exit(1)
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "mtx-bench2json: no benchmark lines found on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtx-bench2json:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	var encodeErr error
	if *sweep {
		encodeErr = enc.Encode(splitByProcs(doc))
	} else {
		encodeErr = enc.Encode(doc)
	}
	if encodeErr != nil {
		fmt.Fprintln(os.Stderr, "mtx-bench2json: encode:", encodeErr)
		os.Exit(1)
	}
	if *gate != "" {
		if !*sweep {
			fmt.Fprintln(os.Stderr, "mtx-bench2json: -gate requires -sweep")
			os.Exit(2)
		}
		if !checkScalingGate(doc.Benchmarks, *gate, *gateRatio) {
			os.Exit(1)
		}
	}
}

// splitByProcs groups a sweep's rows into one document per GOMAXPROCS
// value, in ascending proc order. A row with no -P suffix ran at
// GOMAXPROCS=1 (go test only appends the suffix above 1).
func splitByProcs(doc document) []document {
	byProcs := map[int][]benchRow{}
	var order []int
	for _, row := range doc.Benchmarks {
		p := row.Procs
		if p == 0 {
			p = 1
		}
		if _, seen := byProcs[p]; !seen {
			order = append(order, p)
		}
		byProcs[p] = append(byProcs[p], row)
	}
	sort.Ints(order)
	docs := make([]document, 0, len(order))
	for _, p := range order {
		d := doc
		d.GoMaxProcs = p
		d.Benchmarks = byProcs[p]
		docs = append(docs, d)
	}
	return docs
}

// checkScalingGate verifies that every sub-benchmark of the named
// top-level benchmark retains at least ratio× its lowest-proc
// throughput at its highest proc count, printing one verdict line per
// sub-benchmark on stderr. ns/op is inversely proportional to
// throughput, so the check is nsLow/nsHigh >= ratio.
func checkScalingGate(rows []benchRow, bench string, ratio float64) bool {
	type pair struct {
		loP, hiP   int
		loNs, hiNs float64
	}
	subs := map[string]*pair{}
	var names []string
	for _, row := range rows {
		if row.Bench != bench {
			continue
		}
		p := row.Procs
		if p == 0 {
			p = 1
		}
		s, seen := subs[row.Sub]
		if !seen {
			subs[row.Sub] = &pair{loP: p, hiP: p, loNs: row.NsPerOp, hiNs: row.NsPerOp}
			names = append(names, row.Sub)
			continue
		}
		if p < s.loP {
			s.loP, s.loNs = p, row.NsPerOp
		}
		if p > s.hiP {
			s.hiP, s.hiNs = p, row.NsPerOp
		}
	}
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "mtx-bench2json: gate: no rows for benchmark %q\n", bench)
		return false
	}
	ok := true
	for _, name := range names {
		s := subs[name]
		if s.loP == s.hiP {
			fmt.Fprintf(os.Stderr, "mtx-bench2json: gate: %s/%s has a single proc count (%d); nothing to compare\n",
				bench, name, s.loP)
			ok = false
			continue
		}
		got := s.loNs / s.hiNs // throughput at hiP relative to loP
		verdict := "ok"
		if got < ratio {
			verdict = "FAIL"
			ok = false
		}
		fmt.Fprintf(os.Stderr, "mtx-bench2json: gate: %s/%s %dp->%dp throughput ratio %.2f (min %.2f) %s\n",
			bench, name, s.loP, s.hiP, got, ratio, verdict)
	}
	return ok
}

// parseBenchLine parses one `go test -bench -benchmem` result line:
//
//	BenchmarkKVGet/lazy-4   632835   556.4 ns/op   264 B/op   4 allocs/op
//
// The B/op and allocs/op columns are optional (absent without
// -benchmem); any other shape reports !ok.
func parseBenchLine(line string) (benchRow, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || f[3] != "ns/op" {
		return benchRow{}, false
	}
	name := strings.TrimPrefix(f[0], "Benchmark")
	procs := 0
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return benchRow{}, false
	}
	ns, err := strconv.ParseFloat(f[2], 64)
	if err != nil {
		return benchRow{}, false
	}
	row := benchRow{Name: name, Bench: name, Procs: procs, Iterations: iters, NsPerOp: ns}
	if i := strings.IndexByte(name, '/'); i >= 0 {
		row.Bench, row.Sub = name[:i], name[i+1:]
	}
	// Optional -benchmem columns, in fixed order after ns/op.
	rest := f[4:]
	for len(rest) >= 2 {
		v, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			break
		}
		switch rest[1] {
		case "B/op":
			row.BPerOp = v
		case "allocs/op":
			row.AllocsPerOp = v
		}
		rest = rest[2:]
	}
	return row, true
}
