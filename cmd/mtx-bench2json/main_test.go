package main

import (
	"runtime"
	"strings"
	"testing"
)

// TestDocumentStamp pins the provenance satellite: every document
// carries the Go version and GOMAXPROCS of the run, and the commit
// resolves from git when not supplied (this test runs inside the repo's
// checkout, so a 40-hex hash must come back).
func TestDocumentStamp(t *testing.T) {
	doc := document{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Commit:     gitCommit(),
	}
	if !strings.HasPrefix(doc.GoVersion, "go") {
		t.Errorf("GoVersion = %q, want a go toolchain version", doc.GoVersion)
	}
	if doc.GoMaxProcs < 1 {
		t.Errorf("GoMaxProcs = %d", doc.GoMaxProcs)
	}
	if len(doc.Commit) != 40 {
		t.Errorf("Commit = %q, want a full git hash", doc.Commit)
	}
	for _, c := range doc.Commit {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Errorf("Commit %q contains non-hex %q", doc.Commit, c)
			break
		}
	}
}

func TestParseBenchLine(t *testing.T) {
	row, ok := parseBenchLine("BenchmarkKVGet/lazy-4   \t  632835\t       556.4 ns/op\t     264 B/op\t       4 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if row.Name != "KVGet/lazy" || row.Bench != "KVGet" || row.Sub != "lazy" {
		t.Fatalf("name split = %q/%q/%q", row.Name, row.Bench, row.Sub)
	}
	if row.Procs != 4 || row.Iterations != 632835 {
		t.Fatalf("procs=%d iters=%d", row.Procs, row.Iterations)
	}
	if row.NsPerOp != 556.4 || row.BPerOp != 264 || row.AllocsPerOp != 4 {
		t.Fatalf("metrics = %v ns, %v B, %v allocs", row.NsPerOp, row.BPerOp, row.AllocsPerOp)
	}
}

func TestParseBenchLineNoBenchmem(t *testing.T) {
	row, ok := parseBenchLine("BenchmarkSTMCounter/tl2-8 1868134 126.4 ns/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if row.NsPerOp != 126.4 || row.BPerOp != 0 || row.AllocsPerOp != 0 {
		t.Fatalf("metrics = %v ns, %v B, %v allocs", row.NsPerOp, row.BPerOp, row.AllocsPerOp)
	}
}

func TestParseBenchLineSubless(t *testing.T) {
	row, ok := parseBenchLine("BenchmarkRelClosure-4 10000 104000 ns/op 0 B/op 0 allocs/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if row.Bench != "RelClosure" || row.Sub != "" {
		t.Fatalf("name split = %q/%q", row.Bench, row.Sub)
	}
}

// TestSplitByProcs pins the -sweep grouping: rows split by their -P
// suffix into ascending per-proc documents, suffixless rows counting as
// one proc, with the shared provenance stamp copied into each.
func TestSplitByProcs(t *testing.T) {
	doc := document{
		Commit: "abc",
		Benchmarks: []benchRow{
			{Name: "KVReadHeavy/tl2", Bench: "KVReadHeavy", Sub: "tl2", Procs: 16, NsPerOp: 300},
			{Name: "KVReadHeavy/tl2", Bench: "KVReadHeavy", Sub: "tl2", Procs: 0, NsPerOp: 400},
			{Name: "KVReadHeavy/tl2", Bench: "KVReadHeavy", Sub: "tl2", Procs: 4, NsPerOp: 350},
		},
	}
	docs := splitByProcs(doc)
	if len(docs) != 3 {
		t.Fatalf("got %d documents, want 3", len(docs))
	}
	wantProcs := []int{1, 4, 16}
	for i, d := range docs {
		if d.GoMaxProcs != wantProcs[i] {
			t.Errorf("docs[%d].GoMaxProcs = %d, want %d", i, d.GoMaxProcs, wantProcs[i])
		}
		if len(d.Benchmarks) != 1 {
			t.Errorf("docs[%d] has %d rows, want 1", i, len(d.Benchmarks))
		}
		if d.Commit != "abc" {
			t.Errorf("docs[%d] lost the provenance stamp", i)
		}
	}
}

// TestScalingGate pins the -gate arithmetic: the highest-proc row must
// retain ratio× the lowest-proc throughput, per sub-benchmark.
func TestScalingGate(t *testing.T) {
	rows := []benchRow{
		{Bench: "KVReadHeavy", Sub: "tl2", Procs: 0, NsPerOp: 400},
		{Bench: "KVReadHeavy", Sub: "tl2", Procs: 4, NsPerOp: 500},
		{Bench: "KVReadHeavy", Sub: "tl2", Procs: 16, NsPerOp: 200},
		{Bench: "KVReadHeavy", Sub: "lazy", Procs: 0, NsPerOp: 400},
		{Bench: "KVReadHeavy", Sub: "lazy", Procs: 16, NsPerOp: 500},
		{Bench: "Other", Sub: "x", Procs: 16, NsPerOp: 1},
	}
	// tl2 doubles its throughput (400->200 ns), lazy degrades to 0.8.
	if !checkScalingGate(rows, "KVReadHeavy", 0.75) {
		t.Error("gate at 0.75 should pass: worst ratio is 0.8")
	}
	if checkScalingGate(rows, "KVReadHeavy", 1.0) {
		t.Error("gate at 1.0 should fail: lazy is below parity")
	}
	if checkScalingGate(rows, "Nope", 0.5) {
		t.Error("gate on an absent benchmark must fail")
	}
	if checkScalingGate(rows, "Other", 0.5) {
		t.Error("gate on a single-proc benchmark must fail")
	}
}

func TestParseBenchLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tmodtx/internal/kv\t5.4s",
		"BenchmarkBroken-4 notanumber 1 ns/op",
		"--- BENCH: BenchmarkFoo",
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("line %q should not parse", line)
		}
	}
}
