// Command mtx-stress exercises the paper's mixed-mode idioms on the real
// STM engines (experiments S1–S3 of DESIGN.md): privatization with and
// without quiescence fences, publication, and the eager-versioning
// anomalies, reporting violation counts of programmer-model-forbidden
// outcomes.
package main

import (
	"flag"
	"fmt"
	"os"

	"modtx/internal/stm"
)

func main() {
	iters := flag.Int("iters", 2000, "iterations per probabilistic scenario")
	flag.Parse()

	fmt.Printf("%-22s %-12s %-7s %10s %10s\n", "scenario", "engine", "fenced", "iters", "violations")
	row := func(r stm.StressResult) {
		fmt.Printf("%-22s %-12s %-7v %10d %10d\n",
			r.Scenario, r.Engine, r.Fenced, r.Iterations, r.Violations)
	}

	bad := false
	for _, engine := range stm.Engines() {
		s := stm.New(stm.WithEngine(engine))
		row(stm.Publication(s, *iters))
		for _, fenced := range []bool{false, true} {
			r := stm.Privatization(stm.New(stm.WithEngine(engine)), *iters, fenced)
			row(r)
			if fenced && r.Violations > 0 {
				bad = true
			}
		}
	}

	// Deterministic anomaly demonstrations (forced windows). Both
	// write-buffering engines (lazy and tl2) exhibit delayed writeback.
	for _, engine := range []stm.Engine{stm.Lazy, stm.TL2} {
		row(stm.PrivatizationDeterministic(stm.New(stm.WithEngine(engine)), false))
		row(stm.PrivatizationDeterministic(stm.New(stm.WithEngine(engine)), true))
	}
	eager := stm.New(stm.WithEngine(stm.Eager))
	row(stm.LostUpdateDeterministic(eager))
	eager2 := stm.New(stm.WithEngine(stm.Eager))
	row(stm.DirtyReadDeterministic(eager2))
	lazy2 := stm.New(stm.WithEngine(stm.Lazy))
	row(stm.LostUpdate(lazy2, *iters))

	fmt.Println("\nexpected: fenced privatization and publication show zero violations;")
	fmt.Println("unfenced deterministic scenarios show the forced anomalies (§3.4/§3.5/§5).")
	if bad {
		fmt.Println("ERROR: fenced scenario violated the model")
		os.Exit(1)
	}
}
